package dsd

// Recorder observes a thread's synchronization operations and its typed
// accesses to the GThV replica. The deterministic test harness
// (internal/check) installs one via Options.Recorder to build the event
// history the release-consistency checker validates; production runs leave
// it nil and pay nothing.
//
// All methods are invoked from the goroutine that owns the thread, in
// program order for that rank:
//
//   - Acquire fires after a lock grant's updates have been applied — reads
//     that follow observe everything the grant carried.
//   - Release fires after the home acknowledged the unlock — the writes of
//     the critical section are now visible to the next acquirer.
//   - BarrierEnter fires before the barrier request ships (local writes of
//     the phase are flushed with it); BarrierExit fires after the release's
//     merged updates have been applied.
//   - Join fires after the home acknowledged termination.
//   - Read/Write fire on the typed signed-integer accessors with the
//     canonical stored value (what a subsequent load returns after the
//     platform's size truncation), so a checker models memory exactly.
//   - ReadPtr/WritePtr fire on the pointer accessors (Ptr/SetPtr) with
//     the logical cell the stored address resolves to through the local
//     index table — target member path and element index — rather than
//     the raw address, which is platform-specific and rewritten by
//     pointer translation in heterogeneous runs. A null or unresolvable
//     address reports target "" with index -1.
//
// Implementations must be safe for concurrent use: distinct ranks call
// concurrently.
type Recorder interface {
	Acquire(rank int32, mutex int)
	Release(rank int32, mutex int)
	BarrierEnter(rank int32, barrier int)
	BarrierExit(rank int32, barrier int)
	Join(rank int32)
	Read(rank int32, name string, index int, value int64)
	Write(rank int32, name string, index int, value int64)
	ReadPtr(rank int32, name string, index int, target string, targetIndex int)
	WritePtr(rank int32, name string, index int, target string, targetIndex int)
}
