package dsd

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hetdsm/internal/platform"
	"hetdsm/internal/transport"
	"hetdsm/internal/wire"
)

// feedFrames opens a raw connection to the home and sends the given frames,
// returning whatever the home sends back until it closes the conn.
func feedFrames(t *testing.T, h *Home, frames [][]byte) [][]byte {
	t.Helper()
	client, server := transport.Pipe()
	done := make(chan struct{})
	go func() {
		h.ServeConn(server)
		close(done)
	}()
	for _, f := range frames {
		if err := client.SendFrame(f); err != nil {
			break
		}
	}
	// A hostile frame may accidentally decode as a valid message and leave
	// the home waiting for more input; bound the exchange by severing the
	// connection shortly after the frames are delivered.
	timer := time.AfterFunc(100*time.Millisecond, func() { client.Close() })
	defer timer.Stop()
	var replies [][]byte
	for {
		fr, err := client.RecvFrame()
		if err != nil {
			break
		}
		replies = append(replies, fr)
	}
	client.Close()
	<-done
	return replies
}

func encodeMsg(t *testing.T, m *wire.Message) []byte {
	t.Helper()
	b, err := wire.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHomeSurvivesGarbageFrames throws random byte soup at the home's
// protocol handler: it must drop the connection, never panic, and remain
// fully functional for well-behaved threads afterwards.
func TestHomeSurvivesGarbageFrames(t *testing.T) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(200)
		frame := make([]byte, n)
		r.Read(frame)
		feedFrames(t, h, [][]byte{frame})
	}
	// Still healthy.
	th, err := h.LocalThread(0, platform.SolarisSPARC, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Globals().MustVar("sum").SetInt(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	h.Wait()
}

// TestHomeRejectsMalformedProtocol sends well-formed wire messages that
// violate the protocol: wrong first message, bogus spans, lying sizes. The
// home must reject each connection without corrupting the master.
func TestHomeRejectsMalformedProtocol(t *testing.T) {
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	hello := func(rank int32) []byte {
		return encodeMsg(t, &wire.Message{
			Kind: wire.KindHello, Rank: rank,
			Platform: platform.SolarisSPARC.Name, Base: DefaultBase,
		})
	}

	cases := []struct {
		name   string
		frames [][]byte
	}{
		{"first message not hello", [][]byte{
			encodeMsg(t, &wire.Message{Kind: wire.KindLockReq, Rank: 9}),
		}},
		{"hello with unknown platform", [][]byte{
			encodeMsg(t, &wire.Message{Kind: wire.KindHello, Rank: 9, Platform: "vax", Base: DefaultBase}),
		}},
		{"hello with unaligned base", [][]byte{
			encodeMsg(t, &wire.Message{Kind: wire.KindHello, Rank: 9, Platform: "linux-x86", Base: 12345}),
		}},
		{"update entry out of range", [][]byte{
			hello(9),
			encodeMsg(t, &wire.Message{
				Kind: wire.KindUnlockReq, Rank: 9, Platform: platform.SolarisSPARC.Name, Base: DefaultBase,
				Updates: []wire.Update{{Entry: 99, First: 0, Count: 1, Tag: "(4,1)", Data: []byte{0, 0, 0, 1}}},
			}),
		}},
		{"update span exceeds entry", [][]byte{
			hello(9),
			encodeMsg(t, &wire.Message{
				Kind: wire.KindUnlockReq, Rank: 9, Platform: platform.SolarisSPARC.Name, Base: DefaultBase,
				Updates: []wire.Update{{Entry: 1, First: 60, Count: 10, Tag: "(4,10)", Data: make([]byte, 40)}},
			}),
		}},
		{"update with wrong element size", [][]byte{
			hello(9),
			encodeMsg(t, &wire.Message{
				Kind: wire.KindUnlockReq, Rank: 9, Platform: platform.SolarisSPARC.Name, Base: DefaultBase,
				Updates: []wire.Update{{Entry: 1, First: 0, Count: 2, Tag: "(8,2)", Data: make([]byte, 16)}},
			}),
		}},
		{"negative span", [][]byte{
			hello(9),
			encodeMsg(t, &wire.Message{
				Kind: wire.KindUnlockReq, Rank: 9, Platform: platform.SolarisSPARC.Name, Base: DefaultBase,
				Updates: []wire.Update{{Entry: 1, First: -4, Count: 1, Tag: "(4,1)", Data: []byte{1, 2, 3, 4}}},
			}),
		}},
		{"migrate message to DSD port", [][]byte{
			hello(9),
			encodeMsg(t, &wire.Message{
				Kind: wire.KindMigrate, Rank: 9, Platform: platform.SolarisSPARC.Name,
				State: &wire.ThreadState{PC: 1, FrameTag: "(4,1)(0,0)", Frame: []byte{0, 0, 0, 0}},
			}),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			feedFrames(t, h, c.frames)
		})
	}

	// The master must be untouched and the home functional.
	th, err := h.LocalThread(0, platform.LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := th.Globals().MustVar("A").Int(60)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("master corrupted: A[60] = %d", v)
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
}

// TestThreadSurvivesHomeCrash verifies a thread gets a clean error, not a
// hang, when its home disappears mid-protocol.
func TestThreadSurvivesHomeCrash(t *testing.T) {
	nw := transport.NewInproc()
	h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)

	th, err := Dial(nw, "home", platform.SolarisSPARC, 0, testGThV(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	// Home dies while the thread holds the lock.
	h.Close()
	th.Close() // sever the pipe as a crashed process would

	errCh := make(chan error, 1)
	go func() { errCh <- th.Unlock(0) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("unlock against a dead home succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unlock against a dead home hung")
	}
}

// TestCleanErrorsUnderLinkFailures drives full workload attempts over links
// that die at every possible operation count. Whatever the cut point, the
// DSM must fail with an error (or succeed) — never hang, never panic, and
// the home must stay usable for the next attempt.
func TestCleanErrorsUnderLinkFailures(t *testing.T) {
	for failEvery := 1; failEvery <= 40; failEvery += 3 {
		failEvery := failEvery
		t.Run(fmt.Sprintf("fail-every-%d", failEvery), func(t *testing.T) {
			t.Parallel()
			inner := transport.NewInproc()
			nw := transport.NewFlaky(inner, failEvery)
			h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			l, err := nw.Listen("home")
			if err != nil {
				t.Fatal(err)
			}
			go h.Serve(l)
			defer h.Close()

			done := make(chan error, 1)
			go func() {
				th, err := Dial(nw, "home", platform.SolarisSPARC, 0, testGThV(), DefaultOptions())
				if err != nil {
					done <- err
					return
				}
				defer th.Close()
				sum := th.Globals().MustVar("sum")
				for i := 0; i < 5; i++ {
					if err := th.Lock(0); err != nil {
						done <- err
						return
					}
					v, err := sum.Int(0)
					if err != nil {
						done <- err
						return
					}
					if err := sum.SetInt(0, v+1); err != nil {
						done <- err
						return
					}
					if err := th.Unlock(0); err != nil {
						done <- err
						return
					}
				}
				done <- th.Join()
			}()
			select {
			case <-done:
				// Error or success: both fine; hanging is not.
			case <-time.After(30 * time.Second):
				t.Fatalf("fail-every-%d: workload hung", failEvery)
			}
		})
	}
}

// TestDeadHolderLockRecovered: a thread dies holding a mutex; the home must
// recover the lock so other threads are not deadlocked forever.
func TestDeadHolderLockRecovered(t *testing.T) {
	nw := transport.NewInproc()
	h, err := NewHome(testGThV(), platform.LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go h.Serve(l)
	defer h.Close()

	dying, err := Dial(nw, "home", platform.SolarisSPARC, 0, testGThV(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := Dial(nw, "home", platform.LinuxX86, 1, testGThV(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := dying.Lock(0); err != nil {
		t.Fatal(err)
	}
	// The survivor queues behind the lock, then the holder crashes.
	got := make(chan error, 1)
	go func() { got <- survivor.Lock(0) }()
	// Wait until the survivor's request is actually queued at the home —
	// a fixed sleep under-waits on a loaded single-core runner.
	enqueueDeadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		ls := h.locks[0]
		queued := ls != nil && len(ls.waiters) > 0
		h.mu.Unlock()
		if queued {
			break
		}
		if time.Now().After(enqueueDeadline) {
			t.Fatal("survivor never enqueued behind the held lock")
		}
		runtime.Gosched()
	}
	dying.Close()

	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("survivor lock failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lock never recovered from the dead holder")
	}
	if err := survivor.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Join(); err != nil {
		t.Fatal(err)
	}
}

// TestHandoffUnderFlakyTransport interleaves a home handoff with links that
// die at every possible operation count: the worker's traffic, the Detach
// quiescence wait, the successor handshakes and the redirects all run over
// the failing transport. Whatever the cut point, Detach must return within
// its own timeout (success or a clean error, never a hang), a successful
// handoff must leave the successor serving, and the worker must either
// finish or fail with an error.
func TestHandoffUnderFlakyTransport(t *testing.T) {
	for failEvery := 2; failEvery <= 32; failEvery += 5 {
		failEvery := failEvery
		t.Run(fmt.Sprintf("fail-every-%d", failEvery), func(t *testing.T) {
			t.Parallel()
			inner := transport.NewInproc()
			nw := transport.NewFlaky(inner, failEvery)
			h, err := NewHome(testGThV(), platform.LinuxX86, 1, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			l, err := nw.Listen("home")
			if err != nil {
				t.Fatal(err)
			}
			go h.Serve(l)
			defer h.Close()

			done := make(chan error, 1)
			go func() {
				th, err := Dial(nw, "home", platform.SolarisSPARC, 0, testGThV(), DefaultOptions())
				if err != nil {
					done <- err
					return
				}
				defer th.Close()
				sum := th.Globals().MustVar("sum")
				for i := 0; i < 10; i++ {
					if err := th.Lock(0); err != nil {
						done <- err
						return
					}
					v, err := sum.Int(0)
					if err != nil {
						done <- err
						return
					}
					if err := sum.SetInt(0, v+1); err != nil {
						done <- err
						return
					}
					if err := th.Unlock(0); err != nil {
						done <- err
						return
					}
				}
				done <- th.Join()
			}()

			// Detach mid-workload. Quiescence may never come (the worker
			// may be wedged in a retry loop or hold the lock when its link
			// died), so an error is as acceptable as a handoff — but the
			// call must come back.
			detached := make(chan *Handoff, 1)
			go func() {
				state, err := h.Detach(500 * time.Millisecond)
				if err != nil {
					detached <- nil
					return
				}
				detached <- state
			}()
			select {
			case state := <-detached:
				if state != nil {
					h2, err := NewHomeFromHandoff(testGThV(), platform.SolarisSPARC, 1, DefaultOptions(), state)
					if err != nil {
						t.Fatalf("fail-every-%d: handoff state rejected: %v", failEvery, err)
					}
					l2, err := nw.Listen("home2")
					if err != nil {
						t.Fatal(err)
					}
					go h2.Serve(l2)
					defer h2.Close()
					h.RedirectTo("home2")
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("fail-every-%d: Detach hung past its own timeout", failEvery)
			}

			select {
			case <-done:
				// Error or success: both fine; hanging is not.
			case <-time.After(30 * time.Second):
				t.Fatalf("fail-every-%d: workload hung across the handoff", failEvery)
			}
		})
	}
}
