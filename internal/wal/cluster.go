package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/wire"
)

// Coordinated cluster checkpoints: at a barrier open the home's state is a
// consistent cut of the whole computation — every rank's updates for the
// closing generation are applied, no lock is held by a well-synchronized
// program, and each rank's logical position is simply "about to leave
// barrier generation N". A cut therefore needs only the home snapshot
// (reused from the WAL's compaction format), one tiny checkpoint.Checkpoint
// per rank recording its platform and generation, and a manifest naming the
// generation. Restore is heterogeneous: the home image converts
// receiver-makes-right, and fresh replicas are reseeded in full at each
// rank's first acquire.

const (
	manifestName = "manifest.json"
	homeSnapName = "home.snap"
)

// Cut is a loaded cluster checkpoint.
type Cut struct {
	// Gen is the barrier generation the cut was taken at; workloads
	// resume at phase Gen.
	Gen uint64
	// Snap is the home's state: a RepInit-shaped record whose image is in
	// the checkpointed home's representation.
	Snap *wire.Replication
	// Ranks maps each rank to its thread checkpoint (platform + PC=Gen).
	Ranks map[int32]*checkpoint.Checkpoint
}

// cutManifest is the durable completion marker: it is written (atomically)
// last, so a crash mid-cut leaves no loadable checkpoint.
type cutManifest struct {
	Gen   uint64  `json:"gen"`
	Epoch uint64  `json:"epoch"`
	Ranks []int32 `json:"ranks"`
}

// WriteCut persists a coordinated cluster checkpoint: the home snapshot,
// one thread checkpoint per rank (platform + generation as the logical
// PC), and the manifest last. Safe to call from a dsd CheckpointSink (it
// only writes files). Successive cuts overwrite in place; a torn write is
// harmless because the manifest rename commits the cut atomically.
func WriteCut(dir string, snap *wire.Replication, gen uint64, rankPlats map[int32]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, homeSnapName), encodeSnapshot(snap)); err != nil {
		return err
	}
	man := cutManifest{Gen: gen, Epoch: snap.Epoch}
	for rank, plat := range rankPlats {
		ck := &checkpoint.Checkpoint{Platform: plat, PC: int64(gen)}
		if err := ck.Validate(); err != nil {
			return fmt.Errorf("wal: rank %d checkpoint: %w", rank, err)
		}
		if err := writeFileSync(filepath.Join(dir, rankFile(rank)), ck.Encode()); err != nil {
			return err
		}
		man.Ranks = append(man.Ranks, rank)
	}
	sort.Slice(man.Ranks, func(i, j int) bool { return man.Ranks[i] < man.Ranks[j] })
	mb, err := json.Marshal(&man)
	if err != nil {
		return err
	}
	return writeFileSync(filepath.Join(dir, manifestName), mb)
}

// LoadCut loads the cluster checkpoint in dir.
func LoadCut(dir string) (*Cut, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("wal: no cluster checkpoint in %s: %w", dir, err)
	}
	var man cutManifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("wal: manifest: %w", err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, homeSnapName))
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(blob)
	if err != nil {
		return nil, err
	}
	cut := &Cut{Gen: man.Gen, Snap: snap, Ranks: make(map[int32]*checkpoint.Checkpoint, len(man.Ranks))}
	for _, rank := range man.Ranks {
		cb, err := os.ReadFile(filepath.Join(dir, rankFile(rank)))
		if err != nil {
			return nil, err
		}
		ck, err := checkpoint.Decode(cb)
		if err != nil {
			return nil, fmt.Errorf("wal: rank %d checkpoint: %w", rank, err)
		}
		if uint64(ck.PC) != man.Gen {
			return nil, fmt.Errorf("wal: rank %d checkpoint at generation %d, manifest says %d", rank, ck.PC, man.Gen)
		}
		cut.Ranks[rank] = ck
	}
	return cut, nil
}

func rankFile(rank int32) string { return fmt.Sprintf("rank%d.ckpt", rank) }

// writeFileSync writes data to path atomically: tmp file, fsync, rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
