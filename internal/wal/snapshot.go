package wal

import (
	"fmt"

	"hetdsm/internal/checkpoint"
	"hetdsm/internal/wire"
)

// The WAL snapshot reuses the checkpoint blob format (magic, version,
// CRC): the master image rides in the Globals slot under its real CGT-RMR
// tag, and the rest of the bootstrap record — watermarks, held locks,
// joined set, fencing epoch — rides in the Extra slot as an encoded
// replication record under an opaque byte tag. Decoding therefore gets
// integrity checking and forward versioning for free, and the same blob
// doubles as the home half of a coordinated cluster cut.

// encodeSnapshot serializes a RepInit-shaped record as a checkpoint blob.
func encodeSnapshot(init *wire.Replication) []byte {
	meta := *init
	meta.Image = nil // the image travels in the Globals slot, once
	extra := wire.EncodeReplication(&meta)
	ck := &checkpoint.Checkpoint{
		Platform:   init.Platform,
		PC:         int64(init.Seq),
		GlobalsTag: init.Tag,
		Globals:    init.Image,
		ExtraTag:   checkpoint.OpaqueTag(len(extra)),
		Extra:      extra,
	}
	return ck.Encode()
}

// decodeSnapshot parses a blob written by encodeSnapshot back into a
// bootstrap record.
func decodeSnapshot(blob []byte) (*wire.Replication, error) {
	ck, err := checkpoint.Decode(blob)
	if err != nil {
		return nil, err
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	rec, err := wire.DecodeReplication(ck.Extra)
	if err != nil {
		return nil, err
	}
	if rec.Event != wire.RepInit {
		return nil, fmt.Errorf("wal: snapshot holds a %v record, want %v", rec.Event, wire.RepInit)
	}
	rec.Image = ck.Globals
	if rec.Tag != ck.GlobalsTag {
		return nil, fmt.Errorf("wal: snapshot tag mismatch: %q vs %q", rec.Tag, ck.GlobalsTag)
	}
	return rec, nil
}
