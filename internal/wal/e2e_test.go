package wal_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
	"hetdsm/internal/wal"
)

// e2eBackoff is a fast reconnect policy so threads cross the restart
// window promptly.
func e2eBackoff(rank int32) transport.Backoff {
	return transport.Backoff{
		Base:     200 * time.Microsecond,
		Max:      5 * time.Millisecond,
		Factor:   2,
		Jitter:   0.3,
		Attempts: 2000,
		Seed:     int64(rank) + 1,
	}
}

// runCrashRestart is the shared harness: a WAL-backed solaris-sparc home
// serves linux-x86 workers (the paper's SL mix) over an in-process
// network. Once enough releases are logged the home is SIGKILLed — Kill
// plus Abandon, dropping unsynced records, with no standby and no goodbye
// — and restarted from the WAL onto linux-x86-64 for extra heterogeneity.
// The workers are plain DialHA clients and never learn the home died; they
// reconnect and replay idempotently. Returns the recovered home after
// every thread joined.
func runCrashRestart(t *testing.T, gthv tag.Struct, threads int, body func(*dsd.Thread, int) error) *dsd.Home {
	t.Helper()
	dir := t.TempDir()
	nw := transport.NewInproc()

	wlog, err := wal.Open(wal.Options{Dir: dir, GThV: gthv})
	if err != nil {
		t.Fatal(err)
	}
	opts := dsd.DefaultOptions()
	opts.StickyLocks = true
	opts.Epoch = wlog.Epoch()
	home, err := dsd.NewHome(gthv, platform.SolarisSPARC, threads, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		t.Fatal(err)
	}
	go home.Serve(l)
	if err := home.StartReplication(wlog); err != nil {
		t.Fatal(err)
	}

	recovered := make(chan *dsd.Home, 1)
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for wlog.Appended() < 6 && time.Now().Before(deadline) {
			runtime.Gosched()
		}
		home.Kill()
		wlog.Abandon()
		wlog2, err := wal.Open(wal.Options{Dir: dir, GThV: gthv})
		if err != nil {
			t.Errorf("wal reopen: %v", err)
			recovered <- nil
			return
		}
		t.Cleanup(func() { wlog2.Close() })
		h2, err := wlog2.RecoverHome(platform.LinuxX8664, dsd.DefaultOptions())
		if err != nil {
			t.Errorf("recover: %v", err)
			recovered <- nil
			return
		}
		l2, err := nw.Listen("home") // Kill freed the address
		if err != nil {
			t.Errorf("restart listen: %v", err)
			recovered <- nil
			return
		}
		go h2.Serve(l2)
		if err := h2.StartReplication(wlog2); err != nil {
			t.Errorf("restart replication: %v", err)
			recovered <- nil
			return
		}
		recovered <- h2
	}()

	var wg sync.WaitGroup
	errs := make([]error, threads)
	for rank := 0; rank < threads; rank++ {
		topts := dsd.DefaultOptions()
		topts.StickyLocks = true
		th, err := dsd.DialHABackoff(nw, []string{"home"}, platform.LinuxX86,
			int32(rank), gthv, topts, e2eBackoff(int32(rank)))
		if err != nil {
			t.Fatalf("rank %d dial: %v", rank, err)
		}
		wg.Add(1)
		go func(rank int, th *dsd.Thread) {
			defer wg.Done()
			errs[rank] = body(th, rank)
		}(rank, th)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v", rank, err)
		}
	}

	h2 := <-recovered
	if h2 == nil {
		t.FailNow()
	}
	if h2.Epoch() <= opts.Epoch {
		t.Fatalf("recovered home epoch %d, want above the crashed incarnation's %d", h2.Epoch(), opts.Epoch)
	}
	h2.Wait()
	return h2
}

// TestCrashRestartMatMul SIGKILLs the home mid-matmul, restarts it from
// the WAL on a different platform, and verifies the product is exact.
func TestCrashRestartMatMul(t *testing.T) {
	const n = 24
	const threads = 3
	seed := int64(20060814)
	home := runCrashRestart(t, apps.MatMulGThV(n), threads, func(th *dsd.Thread, rank int) error {
		return apps.MatMulThread(th, rank, threads, n, seed, seed+1)
	})
	defer home.Close()

	want := apps.MatMulSeq(apps.GenIntMatrix(n, seed), apps.GenIntMatrix(n, seed+1), n)
	got, err := home.Globals().MustVar("C").Ints(0, n*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %d after crash restart, want %d", i, got[i], want[i])
		}
	}
}

// TestCrashRestartLU does the same mid-LU; doubles survive the crash cut
// bit for bit.
func TestCrashRestartLU(t *testing.T) {
	const n = 20
	const threads = 3
	seed := int64(20060814)
	home := runCrashRestart(t, apps.LUGThV(n), threads, func(th *dsd.Thread, rank int) error {
		return apps.LUThread(th, rank, threads, n, seed)
	})
	defer home.Close()

	want := apps.GenLUMatrix(n, seed)
	apps.LUSeq(want, n)
	got, err := home.Globals().MustVar("A").Float64s(0, n*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A[%d] = %v after crash restart, want %v", i, got[i], want[i])
		}
	}
}
