package wal

import "hetdsm/internal/telemetry"

// walMetrics resolves metric handles once at Open; with a nil registry
// every method is a no-op and the hot path takes no timestamps.
type walMetrics struct {
	enabled       bool
	appendLatency *telemetry.Histogram
	batchRecords  *telemetry.Histogram
	records       *telemetry.Counter
	snapshots     *telemetry.Counter
	truncations   *telemetry.Counter
	epoch         *telemetry.Gauge
	replayed      *telemetry.Gauge
}

func newWALMetrics(r *telemetry.Registry) walMetrics {
	if r == nil {
		return walMetrics{}
	}
	return walMetrics{
		enabled:       true,
		appendLatency: r.Histogram("dsm_wal_append_seconds", "Latency from record enqueue to fsync completion."),
		batchRecords:  r.Histogram("dsm_wal_fsync_batch_records", "Records committed per fsync (group-commit batch size)."),
		records:       r.Counter("dsm_wal_records_total", "Replication records appended to the WAL."),
		snapshots:     r.Counter("dsm_wal_snapshots_total", "Snapshot compactions performed."),
		truncations:   r.Counter("dsm_wal_truncated_tails_total", "Torn or corrupt log tails cut off during recovery."),
		epoch:         r.Gauge("dsm_wal_epoch", "Current fencing epoch served from this WAL."),
		replayed:      r.Gauge("dsm_wal_replayed_records", "Log-tail records replayed by the last recovery."),
	}
}

func (m *walMetrics) setEpoch(e uint64) {
	if m.enabled {
		m.epoch.Set(float64(e))
	}
}

func (m *walMetrics) setReplayed(n int) {
	if m.enabled {
		m.replayed.Set(float64(n))
	}
}
