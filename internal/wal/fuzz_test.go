package wal

import (
	"os"
	"path/filepath"
	"testing"

	"hetdsm/internal/wire"
)

// FuzzWALReplay feeds arbitrary bytes in as a wal.log and opens the
// directory: recovery must never panic and never replay garbage — whatever
// Open accepts must survive a second open of the same directory.
func FuzzWALReplay(f *testing.F) {
	init := &wire.Replication{Event: wire.RepLock, Rank: 1, Mutex: 0, Seq: 2, Epoch: 1}
	var valid []byte
	valid = append(valid, frame(&wire.Replication{
		Event: wire.RepUnlock, Rank: 1, Mutex: 0, Seq: 1, Epoch: 1,
	})...)
	valid = append(valid, frame(init)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 0x7f}) // one-byte frame, bad CRC
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, GThV: testGThV()})
		if err != nil {
			return
		}
		l.Close()
		l2, err := Open(Options{Dir: dir, GThV: testGThV()})
		if err != nil {
			t.Fatalf("recovered log does not reopen: %v", err)
		}
		l2.Close()
	})
}
