package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/wire"
)

// dsdDefaults are the home options recovery tests use.
func dsdDefaults() dsd.Options { return dsd.DefaultOptions() }

// testGThV is a small global structure for log-level tests.
func testGThV() tag.Struct {
	return tag.Struct{
		Name: "G",
		Fields: []tag.Field{
			{Name: "A", T: tag.IntArray(8)},
		},
	}
}

// testInit builds a valid bootstrap record for testGThV on linux-x86.
func testInit(t *testing.T, seq, epoch uint64) *wire.Replication {
	t.Helper()
	layout, err := tag.NewLayout(testGThV(), platform.LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	return &wire.Replication{
		Event:    wire.RepInit,
		Rank:     -1,
		Mutex:    -1,
		Seq:      seq,
		Epoch:    epoch,
		Platform: platform.LinuxX86.Name,
		Base:     0x1000,
		Image:    make([]byte, layout.Size),
		Tag:      tag.FromLayout(layout).String(),
		Nthreads: 2,
	}
}

// frame encodes one record with the WAL's length+CRC framing.
func frame(rec *wire.Replication) []byte {
	payload := wire.EncodeReplication(rec)
	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func openTest(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, GThV: testGThV()})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRecordFlushReplay appends through the Replicator interface, closes,
// and verifies a reopen replays the whole tail into a recoverable mirror.
func TestRecordFlushReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	if l.Ready() {
		t.Fatal("fresh log claims recoverable state")
	}
	if l.Epoch() != 1 {
		t.Fatalf("fresh log epoch = %d, want 1", l.Epoch())
	}

	l.Record(testInit(t, 0, l.Epoch()))
	l.Record(&wire.Replication{Event: wire.RepLock, Rank: 1, Mutex: 0, Epoch: l.Epoch()})
	l.Record(&wire.Replication{Event: wire.RepUnlock, Rank: 1, Mutex: 0, Epoch: l.Epoch()})
	l.Flush()
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if got := l.Appended(); got != 3 {
		t.Fatalf("appended = %d, want 3", got)
	}
	if !l.Ready() {
		t.Fatal("log not ready after bootstrap record")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir)
	defer l2.Close()
	if !l2.Ready() {
		t.Fatal("reopened log lost the mirror state")
	}
	if l2.Truncated() {
		t.Fatal("clean log reported a truncated tail")
	}
	if l2.Epoch() <= l.Epoch() {
		t.Fatalf("reopen epoch %d not above previous %d", l2.Epoch(), l.Epoch())
	}
}

// TestEpochStrictlyIncreases opens the same directory repeatedly; every
// incarnation must persist a strictly higher fencing epoch, even when it
// records nothing at all.
func TestEpochStrictlyIncreases(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	l.Record(testInit(t, 0, l.Epoch()))
	l.Flush()
	last := l.Epoch()
	l.Close()
	for i := 0; i < 3; i++ {
		l := openTest(t, dir)
		if l.Epoch() <= last {
			t.Fatalf("incarnation %d epoch %d, want > %d", i, l.Epoch(), last)
		}
		last = l.Epoch()
		l.Close()
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial frame at
// the end of the log must be cut off, with everything before it replayed.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, logName)
	var good []byte
	good = append(good, frame(testInit(t, 1, 1))...)
	good = append(good, frame(&wire.Replication{Event: wire.RepLock, Rank: 2, Mutex: 1, Seq: 2, Epoch: 1})...)
	torn := frame(&wire.Replication{Event: wire.RepUnlock, Rank: 2, Mutex: 1, Seq: 3, Epoch: 1})
	torn = torn[:len(torn)-3] // the write died mid-payload
	if err := os.WriteFile(logPath, append(append([]byte{}, good...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir)
	if !l2.Truncated() {
		t.Fatal("torn tail not reported")
	}
	if l2.Replayed() != 2 {
		t.Fatalf("replayed %d records, want 2", l2.Replayed())
	}
	if !l2.Ready() {
		t.Fatal("state before the torn record was lost")
	}
	l2.Close()
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// The torn bytes must be physically gone plus the epoch-bump record
	// appended by Open; a third open proves the file parses end to end.
	if len(data) <= len(good) {
		t.Fatalf("log is %d bytes; want the %d good bytes plus an epoch record", len(data), len(good))
	}
	l3 := openTest(t, dir)
	if l3.Truncated() {
		t.Fatal("truncation reported after the tail was already cut")
	}
	l3.Close()
}

// TestCorruptRecordTruncated flips a payload byte: the CRC must reject the
// record and everything after it, never replaying garbage into the mirror.
func TestCorruptRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	init := testInit(t, 1, 1)
	lock := &wire.Replication{Event: wire.RepLock, Rank: 1, Mutex: 0, Seq: 2, Epoch: 1}
	unlock := &wire.Replication{Event: wire.RepUnlock, Rank: 1, Mutex: 0, Seq: 3, Epoch: 1}
	var raw []byte
	raw = append(raw, frame(init)...)
	mid := len(raw)
	raw = append(raw, frame(lock)...)
	raw = append(raw, frame(unlock)...)
	raw[mid+frameHeader+4] ^= 0xFF // corrupt the lock record's payload
	if err := os.WriteFile(filepath.Join(dir, logName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l := openTest(t, dir)
	defer l.Close()
	if !l.Truncated() {
		t.Fatal("corrupt record not reported as truncation")
	}
	if l.Replayed() != 1 {
		t.Fatalf("replayed %d records, want only the init before the corruption", l.Replayed())
	}
	if !l.Ready() {
		t.Fatal("intact prefix was not replayed")
	}
}

// TestSnapshotCompaction crosses the SnapshotEvery threshold and verifies
// the record tail is replaced by wal.snap — and that recovery afterwards
// comes from the snapshot alone.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GThV: testGThV(), SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	l.Record(testInit(t, 0, l.Epoch()))
	for i := 0; i < 6; i++ {
		l.Record(&wire.Replication{Event: wire.RepLock, Rank: 1, Mutex: 0, Epoch: l.Epoch()})
		l.Record(&wire.Replication{Event: wire.RepUnlock, Rank: 1, Mutex: 0, Epoch: l.Epoch()})
		l.Flush()
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after crossing the threshold: %v", err)
	}
	info, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= 13*64 {
		t.Fatalf("log tail is %d bytes; compaction should have truncated it", info.Size())
	}

	l2 := openTest(t, dir)
	defer l2.Close()
	if !l2.Ready() {
		t.Fatal("snapshot did not restore the mirror")
	}
}

// TestRecoverHomeHeterogeneous replays a little-endian home's WAL and
// recovers it onto a big-endian 64-bit platform; the image must convert
// receiver-makes-right.
func TestRecoverHomeHeterogeneous(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	init := testInit(t, 0, l.Epoch())
	vals := []int64{7, -3, 42, 0, 1 << 20, -9, 5, 11}
	layout, err := tag.NewLayout(testGThV(), platform.LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		f := layout.Fields[0]
		binary.LittleEndian.PutUint32(init.Image[f.Offset+i*4:], uint32(int32(v)))
	}
	l.Record(init)
	l.Flush()
	l.Close()

	l2 := openTest(t, dir)
	defer l2.Close()
	home, err := l2.RecoverHome(platform.SolarisSPARC64, dsdDefaults())
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()
	if home.Epoch() != l2.Epoch() {
		t.Fatalf("recovered home epoch %d, want the log's %d", home.Epoch(), l2.Epoch())
	}
	got, err := home.Globals().MustVar("A").Ints(0, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("A[%d] = %d after heterogeneous recovery, want %d", i, got[i], v)
		}
	}
}

// TestRecoverHomeEmpty must refuse to fabricate a home from nothing.
func TestRecoverHomeEmpty(t *testing.T) {
	l := openTest(t, t.TempDir())
	defer l.Close()
	if _, err := l.RecoverHome(platform.LinuxX86, dsdDefaults()); err == nil {
		t.Fatal("RecoverHome succeeded with no recoverable state")
	}
}
