// Package wal makes the home node durable: a CRC-framed, fsync-batched
// write-ahead log of the replication record stream, with periodic snapshot
// compaction reusing the checkpoint blob format.
//
// The log attaches to a home exactly like a hot-standby stream — it
// implements dsd.Replicator — so the home's existing ordering guarantee
// ("flush before any grant or release is acknowledged") becomes the WAL
// invariant for free: every state mutation a client has ever observed is
// fsynced on disk before the acknowledgment left the home. After a crash,
// Open replays snapshot plus log tail into a mirror (an ha.Backup), and
// RecoverHome promotes the mirror into a live home under a bumped fencing
// epoch; DialHA clients reconnect and idempotently replay in-flight calls
// exactly as they do after a failover.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/tag"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/wire"
)

const (
	logName  = "wal.log"
	snapName = "wal.snap"
	// frameHeader is u32 payload length plus u32 CRC-32 (IEEE) of the
	// payload.
	frameHeader = 8
	// defaultSnapshotEvery compacts after this many appended records.
	defaultSnapshotEvery = 4096
)

// Options configure a Log.
type Options struct {
	// Dir is the directory holding wal.log and wal.snap; created if
	// missing.
	Dir string
	// GThV is the application's global structure type, needed to validate
	// and mirror replicated images.
	GThV tag.Struct
	// SnapshotEvery compacts the log into a snapshot after this many
	// appended records (default 4096). The snapshot replaces the record
	// tail, bounding both disk use and recovery replay length.
	SnapshotEvery int
	// Metrics, when non-nil, receives WAL observability: append latency,
	// fsync batch sizes, snapshot compactions, recovery replay length and
	// the current fencing epoch.
	Metrics *telemetry.Registry
	// Spans, when non-nil, receives a wal-fsync span (enqueue → durable)
	// for every record that carries trace context, parented to the home's
	// apply span so durability cost shows up on the release's causal DAG.
	Spans *telemetry.SpanLog
	// Node labels this log's spans and flight events (default "wal").
	Node string
	// Flight, when non-nil, notes recovery events (replay length, epoch
	// bumps) into the black-box ring.
	Flight *flight.Recorder
}

// Log is a write-ahead log for one home node. It implements
// dsd.Replicator: Record enqueues (called with the home mutex held),
// Flush blocks until everything recorded so far is fsynced. A background
// writer batches queued records into single fsyncs (group commit).
type Log struct {
	opts   Options
	dir    string
	mirror *ha.Backup
	m      walMetrics

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*wire.Replication
	qtimes    []time.Time
	next      uint64 // last stamped record seq
	synced    uint64 // all records with Seq <= synced are durable
	epoch     uint64 // fencing epoch of the incarnation this log serves
	sinceSnap int    // records appended since the last compaction
	appended  uint64
	snapshots uint64
	replayed  int  // records replayed from the log tail at Open
	truncated bool // a torn tail was cut off at Open
	hadState  bool // Open found a snapshot or log records
	failed    error
	closed    bool
	abandoned bool

	f  *os.File // wal.log; writer-owned after Open returns
	wg sync.WaitGroup
}

// Open loads (or creates) the WAL in dir: the snapshot and every intact
// log record are folded into the mirror, a torn or corrupt tail is
// truncated at the last good record, and the fencing epoch is bumped past
// everything seen — persisting the bump before Open returns, so two
// successive restarts can never serve under the same epoch. The returned
// log is ready to attach to a home via StartReplication (which writes a
// fresh bootstrap snapshot and triggers compaction).
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: options missing Dir")
	}
	if len(opts.GThV.Fields) == 0 {
		return nil, fmt.Errorf("wal: options missing GThV")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.Node == "" {
		opts.Node = "wal"
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		opts:   opts,
		dir:    opts.Dir,
		mirror: ha.NewBackup(opts.GThV),
		m:      newWALMetrics(opts.Metrics),
	}
	l.cond = sync.NewCond(&l.mu)

	var maxEpoch uint64
	if blob, err := os.ReadFile(filepath.Join(l.dir, snapName)); err == nil {
		init, err := decodeSnapshot(blob)
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot: %w", err)
		}
		if err := l.mirror.Apply(init); err != nil {
			return nil, fmt.Errorf("wal: snapshot: %w", err)
		}
		l.next = init.Seq
		maxEpoch = init.Epoch
		l.hadState = true
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	logPath := filepath.Join(l.dir, logName)
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if err := l.replayLog(&maxEpoch); err != nil {
		f.Close()
		return nil, err
	}

	l.epoch = maxEpoch + 1
	opts.Flight.Note(opts.Node, flight.KindRestart, -1, l.epoch, uint64(l.replayed))
	if l.hadState {
		// Persist the bump: a RepEpoch record survives a crash before the
		// next snapshot, so the next restart starts above this epoch even
		// if this incarnation never serves a single request.
		l.next++
		rec := &wire.Replication{Event: wire.RepEpoch, Rank: -1, Mutex: -1, Seq: l.next, Epoch: l.epoch}
		if err := l.writeRecord(rec); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := l.mirror.Apply(rec); err != nil {
			f.Close()
			return nil, err
		}
		l.synced = l.next
	}
	l.m.setEpoch(l.epoch)

	l.wg.Add(1)
	go l.writer()
	return l, nil
}

// replayLog folds every intact record of wal.log into the mirror,
// truncates at the first torn or corrupt record, and leaves the file
// positioned for appends.
func (l *Log) replayLog(maxEpoch *uint64) error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	off := 0
	good := 0
	for off+frameHeader <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off:]))
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n <= 0 || n > wire.MaxFrame || off+frameHeader+n > len(data) {
			break // torn tail: length field or payload incomplete
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: never replay garbage
		}
		rec, err := wire.DecodeReplication(payload)
		if err != nil {
			break
		}
		if err := l.mirror.Apply(rec); err != nil {
			// CRC-clean but semantically unusable (an update before any
			// init, say): the tail from here on cannot be trusted.
			break
		}
		if rec.Seq > l.next {
			l.next = rec.Seq
		}
		if rec.Epoch > *maxEpoch {
			*maxEpoch = rec.Epoch
		}
		l.replayed++
		off += frameHeader + n
		good = off
	}
	if good < len(data) {
		l.truncated = true
		l.m.truncations.Inc()
		if err := l.f.Truncate(int64(good)); err != nil {
			return err
		}
	}
	if l.replayed > 0 {
		l.hadState = true
	}
	if _, err := l.f.Seek(int64(good), io.SeekStart); err != nil {
		return err
	}
	l.synced = l.next
	l.m.setReplayed(l.replayed)
	return nil
}

// writeRecord frames and appends one record to wal.log without syncing.
func (l *Log) writeRecord(rec *wire.Replication) error {
	payload := wire.EncodeReplication(rec)
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := l.f.Write(payload)
	return err
}

// Record enqueues one replication record for durable append. It is called
// with the home mutex held, so it must not block on I/O; the background
// writer picks the record up. Part of the dsd.Replicator contract.
func (l *Log) Record(rec *wire.Replication) {
	l.mu.Lock()
	if l.failed != nil || l.closed {
		l.mu.Unlock()
		return
	}
	l.next++
	rec.Seq = l.next
	l.queue = append(l.queue, rec)
	if l.m.enabled || l.opts.Spans != nil {
		l.qtimes = append(l.qtimes, time.Now())
	}
	l.appended++
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Flush blocks until every record passed to Record so far is fsynced on
// disk — or the log has failed or closed, in which case it returns and the
// home continues undurable (the same degraded mode a failed standby stream
// leaves it in). Part of the dsd.Replicator contract.
func (l *Log) Flush() {
	l.mu.Lock()
	target := l.next
	for l.synced < target && l.failed == nil && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// writer drains the queue in batches: write all frames, one fsync (group
// commit), fold into the mirror, wake flushers, compact when due.
func (l *Log) writer() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed && l.failed == nil {
			l.cond.Wait()
		}
		if l.failed != nil || (l.closed && len(l.queue) == 0) {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		times := l.qtimes
		l.queue = nil
		l.qtimes = nil
		l.mu.Unlock()

		for _, rec := range batch {
			if err := l.writeRecord(rec); err != nil {
				l.fail(err)
				return
			}
		}
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return
		}
		now := time.Now()
		if l.m.enabled {
			for _, t0 := range times {
				l.m.appendLatency.Observe(now.Sub(t0).Seconds())
			}
		}
		if l.opts.Spans != nil {
			// One wal-fsync span per traced record: enqueue → durable,
			// parented to the apply span the record carried.
			for i, rec := range batch {
				if rec.TraceID == 0 || i >= len(times) {
					continue
				}
				l.opts.Spans.RecordCtx(l.opts.Node, telemetry.StageWAL, rec.Rank, 0,
					rec.TraceID, rec.ParentSpan, times[i], now.Sub(times[i]), wire.UpdateBytes(rec.Updates))
			}
		}
		l.m.batchRecords.Observe(float64(len(batch)))
		l.m.records.Add(uint64(len(batch)))

		compactDue := false
		for _, rec := range batch {
			if err := l.mirror.Apply(rec); err != nil {
				// The mirror is the recovery state; if it cannot fold a
				// record we just fsynced, recovery would fail at the same
				// point. Degrade loudly rather than pretend durability.
				l.fail(fmt.Errorf("wal: mirror rejected record %d: %w", rec.Seq, err))
				return
			}
			if rec.Event == wire.RepInit {
				compactDue = true
			}
		}

		l.mu.Lock()
		l.synced = batch[len(batch)-1].Seq
		l.sinceSnap += len(batch)
		if l.sinceSnap >= l.opts.SnapshotEvery {
			compactDue = true
		}
		skip := l.closed
		l.cond.Broadcast()
		l.mu.Unlock()
		if compactDue && !skip {
			l.compact()
		}
	}
}

// compact writes the mirror's folded state as the snapshot (tmp + fsync +
// rename) and truncates the record tail it replaces. A crash between the
// two steps only leaves already-folded records in the log; recovery dedups
// them against the snapshot's sequence number.
func (l *Log) compact() {
	init, err := l.mirror.InitRecord()
	if err != nil {
		return
	}
	l.mu.Lock()
	if init.Epoch < l.epoch {
		init.Epoch = l.epoch
	}
	l.mu.Unlock()

	blob := encodeSnapshot(init)
	tmp := filepath.Join(l.dir, snapName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.fail(err)
		return
	}
	if _, err := tf.Write(blob); err != nil {
		tf.Close()
		l.fail(err)
		return
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		l.fail(err)
		return
	}
	if err := tf.Close(); err != nil {
		l.fail(err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		l.fail(err)
		return
	}
	if err := l.f.Truncate(0); err != nil {
		l.fail(err)
		return
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.fail(err)
		return
	}
	l.m.snapshots.Inc()
	l.mu.Lock()
	l.sinceSnap = 0
	l.snapshots++
	l.mu.Unlock()
}

// fail marks the log broken; flushers return immediately from now on and
// the home degrades to undurable, exactly like a failed standby stream.
// The writer returns right after calling it.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Close drains the queue, syncs, and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
	return l.f.Close()
}

// Abandon simulates the process dying (kill -9): queued records are
// dropped without a final fsync and the file handle is closed as-is. Only
// the fault-injection harness calls it; a real crash needs no help.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.abandoned = true
	l.queue = nil
	l.qtimes = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
	l.f.Close()
}

// RecoverHome promotes the replayed mirror into a live home on platform p
// (any platform: the image converts receiver-makes-right), running under
// the log's persisted epoch — one past everything the crashed incarnation
// ever stamped, so its zombie frames are fenced everywhere. Held locks and
// both watermark families carry over; reconnecting DialHA clients replay
// in-flight calls idempotently. Attach the log to the recovered home with
// StartReplication to resume logging (the fresh bootstrap record also
// compacts the replayed tail away).
func (l *Log) RecoverHome(p *platform.Platform, opts dsd.Options) (*dsd.Home, error) {
	if !l.Ready() {
		return nil, fmt.Errorf("wal: no recoverable state in %s", l.dir)
	}
	opts.Epoch = l.Epoch()
	return l.mirror.Promote(p, opts)
}

// Ready reports whether Open found (or a bootstrap record has since
// provided) a recoverable home state.
func (l *Log) Ready() bool { return l.mirror.Ready() }

// Epoch returns the fencing epoch this log's incarnation serves under.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Appended returns how many records have been recorded since Open.
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Replayed returns how many log-tail records Open folded into the mirror.
func (l *Log) Replayed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayed
}

// Truncated reports whether Open cut off a torn or corrupt tail.
func (l *Log) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Err returns the first write/sync failure, or nil.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Stats summarizes the log for diagnostics endpoints.
func (l *Log) Stats() map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := map[string]any{
		"dir":       l.dir,
		"epoch":     l.epoch,
		"appended":  l.appended,
		"synced":    l.synced,
		"snapshots": l.snapshots,
		"replayed":  l.replayed,
		"truncated": l.truncated,
	}
	if l.failed != nil {
		st["error"] = l.failed.Error()
	}
	return st
}
