package tag

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is one tuple of a CGT-RMR tag sequence.
//
//	Count > 0, Kids == nil: n scalars of Size bytes            "(m,n)"
//	Count < 0, Kids == nil: -Count pointers of Size bytes      "(m,-n)"
//	Count == 0, Kids == nil: Size bytes of padding             "(m,0)"
//	Kids != nil, Count > 0: Count copies of the aggregate      "((…),n)"
type Node struct {
	// Size is the scalar or padding size in bytes; unused for aggregates.
	Size int
	// Count is the repeat count; its sign encodes pointer-ness per the
	// grammar above.
	Count int
	// Kids are the member tuples of an aggregate.
	Kids Seq
}

// Seq is a CGT-RMR tag tuple sequence, the unit the paper's sprintf calls
// glue together.
type Seq []Node

// IsPad reports whether the node is a padding slot (including the
// ubiquitous (0,0) "no padding" slot).
func (n Node) IsPad() bool { return n.Kids == nil && n.Count == 0 }

// IsPointer reports whether the node describes pointers.
func (n Node) IsPointer() bool { return n.Kids == nil && n.Count < 0 }

// IsScalar reports whether the node describes plain scalars.
func (n Node) IsScalar() bool { return n.Kids == nil && n.Count > 0 }

// IsAggregate reports whether the node is a nested aggregate.
func (n Node) IsAggregate() bool { return n.Kids != nil }

// Bytes returns the total storage the node covers.
func (n Node) Bytes() int {
	switch {
	case n.IsAggregate():
		return n.Kids.Bytes() * n.Count
	case n.IsPad():
		return n.Size
	case n.IsPointer():
		return n.Size * -n.Count
	default:
		return n.Size * n.Count
	}
}

// Bytes returns the total storage the sequence covers, padding included.
func (s Seq) Bytes() int {
	total := 0
	for _, n := range s {
		total += n.Bytes()
	}
	return total
}

// String renders the sequence in the paper's textual grammar, e.g.
// "(4,-1)(0,0)(4,1)(0,0)".
func (s Seq) String() string {
	var b strings.Builder
	s.write(&b)
	return b.String()
}

func (s Seq) write(b *strings.Builder) {
	for _, n := range s {
		b.WriteByte('(')
		if n.IsAggregate() {
			n.Kids.write(b)
		} else {
			b.WriteString(strconv.Itoa(n.Size))
		}
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(n.Count))
		b.WriteByte(')')
	}
}

// Parse decodes a tag string in the paper's grammar back into a sequence.
// It is the receiver-side inverse of Seq.String.
func Parse(s string) (Seq, error) {
	p := &parser{src: s}
	seq, err := p.seq()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tag: trailing garbage at offset %d in %q", p.pos, s)
	}
	return seq, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) seq() (Seq, error) {
	var out Seq
	for p.pos < len(p.src) && p.src[p.pos] == '(' {
		n, err := p.node()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tag: empty tuple sequence at offset %d in %q", p.pos, p.src)
	}
	return out, nil
}

func (p *parser) node() (Node, error) {
	if err := p.expect('('); err != nil {
		return Node{}, err
	}
	var n Node
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		kids, err := p.seq()
		if err != nil {
			return Node{}, err
		}
		n.Kids = kids
	} else {
		size, err := p.int()
		if err != nil {
			return Node{}, err
		}
		if size < 0 {
			return Node{}, fmt.Errorf("tag: negative size %d in %q", size, p.src)
		}
		n.Size = size
	}
	if err := p.expect(','); err != nil {
		return Node{}, err
	}
	count, err := p.int()
	if err != nil {
		return Node{}, err
	}
	n.Count = count
	if n.Kids != nil && n.Count <= 0 {
		return Node{}, fmt.Errorf("tag: aggregate with non-positive count %d in %q", n.Count, p.src)
	}
	if err := p.expect(')'); err != nil {
		return Node{}, err
	}
	return n, nil
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("tag: expected %q at offset %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *parser) int() (int, error) {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.src[start] == '-') {
		return 0, fmt.Errorf("tag: expected integer at offset %d in %q", start, p.src)
	}
	return strconv.Atoi(p.src[start:p.pos])
}

// FromLayout emits the tag sequence for a layout. Struct members are each
// followed by their padding tuple — (0,0) when the compiler inserted no
// padding — matching the run-time strings of Figure 3 and the alternating
// element/padding rows of Table 1.
func FromLayout(l *Layout) Seq {
	switch {
	case l.Fields != nil:
		var out Seq
		for _, f := range l.Fields {
			out = append(out, itemNodes(f.Layout)...)
			out = append(out, Node{Size: f.PadAfter, Count: 0})
		}
		return out
	default:
		return itemNodes(l)
	}
}

// itemNodes renders a single element (scalar, pointer, array or nested
// struct) without a trailing padding tuple.
func itemNodes(l *Layout) Seq {
	switch {
	case l.IsPointer():
		return Seq{{Size: l.Size, Count: -1}}
	case l.IsScalar():
		return Seq{{Size: l.Size, Count: 1}}
	case l.Elem != nil: // array
		el := l.Elem
		switch {
		case el.IsPointer():
			return Seq{{Size: el.Size, Count: -l.N}}
		case el.IsScalar():
			return Seq{{Size: el.Size, Count: l.N}}
		default:
			return Seq{{Kids: FromLayout(el), Count: l.N}}
		}
	default: // nested struct used as a single element
		return Seq{{Kids: FromLayout(l), Count: 1}}
	}
}

// VarFrame emits the tag string for a MigThread variable frame: each
// variable's tuple followed by (0,0), then an optional frame tail padding
// slot. With items {void*, int, int} and tailPad 8 on linux-x86 this
// reproduces the MThV_heter string of Figure 3 byte for byte.
func VarFrame(items []*Layout, tailPad int) Seq {
	var out Seq
	for _, it := range items {
		out = append(out, itemNodes(it)...)
		out = append(out, Node{Size: 0, Count: 0})
	}
	if tailPad > 0 {
		out = append(out, Node{Size: tailPad, Count: 0}, Node{Size: 0, Count: 0})
	}
	return out
}

// Run is one flattened span of identical scalars (or padding) produced by
// Seq.Flatten. Converters iterate runs instead of recursing through
// aggregates.
type Run struct {
	// Size is the per-element byte size (or the padding length).
	Size int
	// Count is the number of elements; 0 for padding.
	Count int
	// Pointer marks pointer runs.
	Pointer bool
	// Pad marks padding runs.
	Pad bool
}

// Bytes returns the storage the run covers.
func (r Run) Bytes() int {
	if r.Pad {
		return r.Size
	}
	return r.Size * r.Count
}

// Flatten expands aggregates (repeating their members Count times) into a
// linear slice of scalar and padding runs, in storage order.
func (s Seq) Flatten() []Run {
	var out []Run
	s.flattenInto(&out, 1)
	return out
}

func (s Seq) flattenInto(out *[]Run, reps int) {
	for rep := 0; rep < reps; rep++ {
		for _, n := range s {
			switch {
			case n.IsAggregate():
				n.Kids.flattenInto(out, n.Count)
			case n.IsPad():
				if n.Size > 0 {
					*out = append(*out, Run{Size: n.Size, Pad: true})
				}
			case n.IsPointer():
				*out = append(*out, Run{Size: n.Size, Count: -n.Count, Pointer: true})
			default:
				*out = append(*out, Run{Size: n.Size, Count: n.Count})
			}
		}
	}
}

// Equal reports whether two sequences are structurally identical. The
// homogeneous fast path in the paper is literally a string comparison of
// tags; Equal is the allocation-free equivalent.
func (s Seq) Equal(o Seq) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		a, b := s[i], o[i]
		if a.Size != b.Size || a.Count != b.Count {
			return false
		}
		if (a.Kids == nil) != (b.Kids == nil) {
			return false
		}
		if a.Kids != nil && !a.Kids.Equal(b.Kids) {
			return false
		}
	}
	return true
}
