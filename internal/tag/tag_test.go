package tag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetdsm/internal/platform"
)

// TestFigure3TagStrings reproduces the run-time tag strings of Figure 3:
//
//	MThV_heter = "(4,-1)(0,0)(4,1)(0,0)(4,1)(0,0)(8,0)(0,0)"
//	MThP_heter = "(4,-1)(0,0)(4,-1)(0,0)"
//
// The value frame holds a pointer and two ints with an 8-byte reserved tail
// slot; the pointer frame holds two pointers.
func TestFigure3TagStrings(t *testing.T) {
	p := platform.LinuxX86
	ptr := MustLayout(Pointer{}, p)
	ci := MustLayout(Int(), p)

	mthv := VarFrame([]*Layout{ptr, ci, ci}, 8)
	if got, want := mthv.String(), "(4,-1)(0,0)(4,1)(0,0)(4,1)(0,0)(8,0)(0,0)"; got != want {
		t.Errorf("MThV tag = %q, want %q", got, want)
	}
	mthp := VarFrame([]*Layout{ptr, ptr}, 0)
	if got, want := mthp.String(), "(4,-1)(0,0)(4,-1)(0,0)"; got != want {
		t.Errorf("MThP tag = %q, want %q", got, want)
	}
}

func TestGThVTagString(t *testing.T) {
	// The Figure 4 struct on linux-x86: pointer, three 56169-int arrays
	// and an int, each with no padding.
	l := MustLayout(gthv(), platform.LinuxX86)
	want := "(4,-1)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,1)(0,0)"
	if got := FromLayout(l).String(); got != want {
		t.Errorf("GThV tag = %q, want %q", got, want)
	}
}

func TestAggregateTag(t *testing.T) {
	inner := Struct{Name: "in", Fields: []Field{
		{Name: "c", T: Char()},
		{Name: "x", T: Int()},
	}}
	arr := Array{Elem: inner, N: 5}
	l := MustLayout(arr, platform.LinuxX86)
	// inner: char (pad 3) int (pad 0) -> "(1,1)(3,0)(4,1)(0,0)", repeated 5x.
	want := "((1,1)(3,0)(4,1)(0,0),5)"
	if got := FromLayout(l).String(); got != want {
		t.Errorf("aggregate tag = %q, want %q", got, want)
	}
}

func TestParseScalarsAndPointers(t *testing.T) {
	seq, err := Parse("(4,-1)(0,0)(4,1)(0,0)(8,0)(0,0)")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 6 {
		t.Fatalf("got %d nodes, want 6", len(seq))
	}
	if !seq[0].IsPointer() || seq[0].Size != 4 || seq[0].Count != -1 {
		t.Errorf("node 0 = %+v, want pointer (4,-1)", seq[0])
	}
	if !seq[1].IsPad() || seq[1].Size != 0 {
		t.Errorf("node 1 = %+v, want (0,0)", seq[1])
	}
	if !seq[2].IsScalar() || seq[2].Size != 4 || seq[2].Count != 1 {
		t.Errorf("node 2 = %+v, want (4,1)", seq[2])
	}
	if !seq[4].IsPad() || seq[4].Size != 8 {
		t.Errorf("node 4 = %+v, want (8,0)", seq[4])
	}
}

func TestParseAggregate(t *testing.T) {
	seq, err := Parse("((1,1)(3,0)(4,1)(0,0),5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || !seq[0].IsAggregate() || seq[0].Count != 5 {
		t.Fatalf("got %+v, want one aggregate with count 5", seq)
	}
	if len(seq[0].Kids) != 4 {
		t.Errorf("aggregate has %d kids, want 4", len(seq[0].Kids))
	}
	if seq[0].Bytes() != 40 {
		t.Errorf("aggregate bytes = %d, want 40", seq[0].Bytes())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "(", "(4", "(4,", "(4,)", "(4,1", "4,1)", "(4,1)x",
		"(,1)", "((4,1),0)", "((4,1),-2)", "(-4,1)", "(4,1)(",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestFlatten(t *testing.T) {
	seq, err := Parse("(4,-1)(0,0)((1,1)(3,0)(4,1)(0,0),2)(4,10)")
	if err != nil {
		t.Fatal(err)
	}
	runs := seq.Flatten()
	want := []Run{
		{Size: 4, Count: 1, Pointer: true},
		{Size: 1, Count: 1},
		{Size: 3, Pad: true},
		{Size: 4, Count: 1},
		{Size: 1, Count: 1},
		{Size: 3, Pad: true},
		{Size: 4, Count: 1},
		{Size: 4, Count: 10},
	}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs %v, want %d", len(runs), runs, len(want))
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
	total := 0
	for _, r := range runs {
		total += r.Bytes()
	}
	if total != seq.Bytes() {
		t.Errorf("flatten bytes %d != seq bytes %d", total, seq.Bytes())
	}
}

func TestSeqEqual(t *testing.T) {
	a, _ := Parse("(4,1)(0,0)((4,2)(0,0),3)")
	b, _ := Parse("(4,1)(0,0)((4,2)(0,0),3)")
	c, _ := Parse("(4,1)(0,0)((4,2)(0,0),4)")
	d, _ := Parse("(4,1)(0,0)")
	if !a.Equal(b) {
		t.Error("identical sequences must be Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different sequences must not be Equal")
	}
}

// randomSeq builds a random well-formed tag sequence for round-trip tests.
func randomSeq(r *rand.Rand, depth int) Seq {
	n := 1 + r.Intn(4)
	out := make(Seq, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case depth > 0 && r.Intn(4) == 0:
			out = append(out, Node{Kids: randomSeq(r, depth-1), Count: 1 + r.Intn(5)})
		case r.Intn(4) == 0:
			out = append(out, Node{Size: r.Intn(16), Count: 0})
		case r.Intn(3) == 0:
			out = append(out, Node{Size: []int{4, 8}[r.Intn(2)], Count: -(1 + r.Intn(100))})
		default:
			out = append(out, Node{Size: []int{1, 2, 4, 8}[r.Intn(4)], Count: 1 + r.Intn(100000)})
		}
	}
	return out
}

// Property: Parse is the exact inverse of String.
func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeq(r, 2)
		parsed, err := Parse(s.String())
		if err != nil {
			return false
		}
		return parsed.Equal(s) && parsed.String() == s.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Bytes is preserved by the String/Parse round trip and by
// flattening.
func TestQuickBytesInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeq(r, 2)
		parsed, err := Parse(s.String())
		if err != nil {
			return false
		}
		total := 0
		for _, run := range parsed.Flatten() {
			total += run.Bytes()
		}
		return parsed.Bytes() == s.Bytes() && total == s.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
