package tag

import "testing"

// FuzzParse exercises the CGT-RMR tag grammar parser with arbitrary
// strings. Parse must never panic, and anything it accepts must print and
// re-parse to an equal sequence.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(4,-1)(0,0)(4,1)(0,0)(4,1)(0,0)(8,0)(0,0)",
		"(4,-1)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,56169)(0,0)(4,1)(0,0)",
		"((1,1)(3,0)(4,1)(0,0),5)",
		"(((2,2),3),4)",
		"", "(", "(4", "(4,1", "(4,1)x", "(-1,1)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := Parse(s)
		if err != nil {
			return
		}
		printed := seq.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("parsed sequence does not re-parse: %q -> %q: %v", s, printed, err)
		}
		if !again.Equal(seq) {
			t.Fatalf("round trip not equal: %q vs %q", printed, again.String())
		}
		if again.Bytes() != seq.Bytes() {
			t.Fatalf("byte accounting changed: %d vs %d", seq.Bytes(), again.Bytes())
		}
	})
}
