package tag

import (
	"fmt"

	"hetdsm/internal/platform"
)

// Layout is the physical realization of a Type on one platform: concrete
// size, alignment and member offsets, including the padding slots the tag
// grammar must report. Layouts are immutable once built.
type Layout struct {
	// Type is the logical type this layout realizes.
	Type Type
	// Platform is the ABI the layout was computed for.
	Platform *platform.Platform
	// Size is the total storage size in bytes, including tail padding.
	Size int
	// Align is the required alignment in bytes.
	Align int

	// Kind is the physical scalar kind when Type is a Scalar or Pointer;
	// undefined otherwise.
	Kind platform.Kind

	// Elem is the element layout when Type is an Array; nil otherwise.
	Elem *Layout
	// N is the element count when Type is an Array.
	N int

	// Fields are member layouts when Type is a Struct; nil otherwise.
	Fields []FieldLayout
}

// FieldLayout is the placement of one struct member.
type FieldLayout struct {
	// Name is the member name.
	Name string
	// Offset is the byte offset from the start of the struct.
	Offset int
	// Layout is the member's own layout.
	Layout *Layout
	// PadAfter is the number of padding bytes between the end of this
	// member and the next member (or the end of the struct). This is the
	// quantity the tag grammar reports as (pad,0) slots.
	PadAfter int
}

// NewLayout computes the physical layout of t on platform p. It returns an
// error for structurally invalid types.
func NewLayout(t Type, p *platform.Platform) (*Layout, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	return layoutOf(t, p), nil
}

// MustLayout is NewLayout that panics on error; for statically known types.
func MustLayout(t Type, p *platform.Platform) *Layout {
	l, err := NewLayout(t, p)
	if err != nil {
		panic(err)
	}
	return l
}

func layoutOf(t Type, p *platform.Platform) *Layout {
	switch tt := t.(type) {
	case Scalar:
		k := p.Kind(tt.T)
		return &Layout{Type: t, Platform: p, Size: p.SizeOf(k), Align: p.AlignOf(k), Kind: k}
	case Pointer:
		k := platform.Ptr
		return &Layout{Type: t, Platform: p, Size: p.SizeOf(k), Align: p.AlignOf(k), Kind: k}
	case Array:
		el := layoutOf(tt.Elem, p)
		return &Layout{
			Type: t, Platform: p,
			Size: el.Size * tt.N, Align: el.Align,
			Elem: el, N: tt.N,
		}
	case Struct:
		return structLayout(tt, p)
	default:
		panic(fmt.Sprintf("tag: unknown type %T", t))
	}
}

func structLayout(s Struct, p *platform.Platform) *Layout {
	l := &Layout{Type: s, Platform: p, Align: 1}
	off := 0
	fields := make([]FieldLayout, len(s.Fields))
	for i, f := range s.Fields {
		fl := layoutOf(f.T, p)
		off = alignUp(off, fl.Align)
		fields[i] = FieldLayout{Name: f.Name, Offset: off, Layout: fl}
		off += fl.Size
		if fl.Align > l.Align {
			l.Align = fl.Align
		}
	}
	size := alignUp(off, l.Align)
	// Back-fill PadAfter: gap to the next member's offset, or to the end
	// of the struct for the last member.
	for i := range fields {
		end := fields[i].Offset + fields[i].Layout.Size
		next := size
		if i+1 < len(fields) {
			next = fields[i+1].Offset
		}
		fields[i].PadAfter = next - end
	}
	l.Fields = fields
	l.Size = size
	return l
}

func alignUp(off, align int) int {
	if align <= 1 {
		return off
	}
	return (off + align - 1) &^ (align - 1)
}

// IsScalar reports whether the layout is a scalar or pointer (a leaf).
func (l *Layout) IsScalar() bool { return l.Elem == nil && l.Fields == nil }

// IsPointer reports whether the layout is a pointer leaf.
func (l *Layout) IsPointer() bool { return l.IsScalar() && l.Kind == platform.Ptr }

// FieldByName returns the placement of the named member and true, or a zero
// FieldLayout and false when the struct has no such member (or the layout is
// not a struct).
func (l *Layout) FieldByName(name string) (FieldLayout, bool) {
	for _, f := range l.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldLayout{}, false
}

// Offset returns the byte offset of a dotted member path ("A" or "hdr.len")
// from the start of the layout. It returns an error for unknown members or
// paths that descend through non-structs.
func (l *Layout) Offset(path ...string) (int, error) {
	off := 0
	cur := l
	for _, name := range path {
		if cur.Fields == nil {
			return 0, fmt.Errorf("tag: %s is not a struct, cannot select %q", TypeString(cur.Type), name)
		}
		f, ok := cur.FieldByName(name)
		if !ok {
			return 0, fmt.Errorf("tag: %s has no member %q", TypeString(cur.Type), name)
		}
		off += f.Offset
		cur = f.Layout
	}
	return off, nil
}
