// Package tag implements the CGT-RMR ("Coarse-Grain Tagged receiver makes
// right") type description machinery from Section 3.2 of the paper.
//
// MigThread's preprocessor reduces every thread state to pure data described
// by tags: textual sequences of (m,n) tuples where
//
//	(m,n)   is n scalars of m bytes each,
//	(m,-n)  is n pointers of m bytes each,
//	(m,0)   is an m-byte padding slot ((0,0) meaning "no padding"), and
//	((…),n) is n copies of an aggregate whose members are described by
//	        the nested tuple sequence.
//
// This package provides the logical (platform-independent) type language,
// per-platform layout computation (sizes, alignment, padding — the physical
// facts the tags encode), and tag generation plus parsing in exactly the
// paper's grammar.
package tag

import (
	"fmt"

	"hetdsm/internal/platform"
)

// Type is a platform-independent description of a C data type. A Type plus
// a platform yields a Layout: concrete sizes, offsets and padding.
type Type interface {
	// typeString renders a C-like spelling for diagnostics.
	typeString() string
	// validate reports structural problems (zero-length arrays etc.).
	validate() error
}

// Scalar is a logical C scalar type (int, long, double, ...). Pointers are
// represented by Pointer, not by Scalar{CPtr}, because the tag grammar
// marks them with negative counts.
type Scalar struct {
	// T is the logical C type.
	T platform.CType
}

func (s Scalar) typeString() string { return s.T.String() }

func (s Scalar) validate() error {
	if s.T == platform.CPtr {
		return fmt.Errorf("tag: use Pointer, not Scalar{CPtr}")
	}
	return nil
}

// Pointer is a C data pointer. Target type is irrelevant to layout; CGT-RMR
// transfers pointers as opaque words and translates or annuls them at the
// receiver.
type Pointer struct{}

func (Pointer) typeString() string { return "void*" }
func (Pointer) validate() error    { return nil }

// Array is a fixed-length C array.
type Array struct {
	// Elem is the element type.
	Elem Type
	// N is the element count; it must be positive.
	N int
}

func (a Array) typeString() string { return fmt.Sprintf("%s[%d]", a.Elem.typeString(), a.N) }

func (a Array) validate() error {
	if a.N <= 0 {
		return fmt.Errorf("tag: array length %d must be positive", a.N)
	}
	if a.Elem == nil {
		return fmt.Errorf("tag: array with nil element type")
	}
	return a.Elem.validate()
}

// Field is one member of a Struct.
type Field struct {
	// Name is the member name (diagnostics and index-table labels).
	Name string
	// T is the member type.
	T Type
}

// Struct is a C structure. Layout follows natural alignment: each field is
// aligned to its own alignment requirement and the total size is rounded up
// to the struct's alignment, exactly like the paper's compilers did.
type Struct struct {
	// Name is the struct tag name (e.g. "GThV_t").
	Name string
	// Fields are the members in declaration order.
	Fields []Field
}

func (s Struct) typeString() string { return "struct " + s.Name }

func (s Struct) validate() error {
	if len(s.Fields) == 0 {
		return fmt.Errorf("tag: struct %s has no fields", s.Name)
	}
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		if f.T == nil {
			return fmt.Errorf("tag: struct %s field %s has nil type", s.Name, f.Name)
		}
		if f.Name != "" {
			if seen[f.Name] {
				return fmt.Errorf("tag: struct %s has duplicate field %s", s.Name, f.Name)
			}
			seen[f.Name] = true
		}
		if err := f.T.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks a type tree for structural problems. It is called by
// NewLayout; exported for callers that build types from external input.
func Validate(t Type) error {
	if t == nil {
		return fmt.Errorf("tag: nil type")
	}
	return t.validate()
}

// TypeString renders a C-like spelling of t for diagnostics.
func TypeString(t Type) string {
	if t == nil {
		return "<nil>"
	}
	return t.typeString()
}

// Int returns the logical C int scalar; a convenience for the most common
// member type in the paper's workloads.
func Int() Scalar { return Scalar{T: platform.CInt} }

// Double returns the logical C double scalar.
func Double() Scalar { return Scalar{T: platform.CDouble} }

// Char returns the logical C char scalar.
func Char() Scalar { return Scalar{T: platform.CChar} }

// Long returns the logical C long scalar.
func Long() Scalar { return Scalar{T: platform.CLong} }

// LongLong returns the logical C long long scalar (8 bytes everywhere).
func LongLong() Scalar { return Scalar{T: platform.CLongLong} }

// IntArray returns int[n].
func IntArray(n int) Array { return Array{Elem: Int(), N: n} }

// DoubleArray returns double[n].
func DoubleArray(n int) Array { return Array{Elem: Double(), N: n} }
