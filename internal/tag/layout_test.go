package tag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetdsm/internal/platform"
)

// gthv returns the Figure 4 structure:
//
//	struct GThV_t { void *GThP; int A[237*237]; int B[...]; int C[...]; int n; }
func gthv() Struct {
	const n = 237 * 237
	return Struct{
		Name: "GThV_t",
		Fields: []Field{
			{Name: "GThP", T: Pointer{}},
			{Name: "A", T: IntArray(n)},
			{Name: "B", T: IntArray(n)},
			{Name: "C", T: IntArray(n)},
			{Name: "n", T: Int()},
		},
	}
}

func TestGThVLayoutLinux(t *testing.T) {
	l := MustLayout(gthv(), platform.LinuxX86)
	const elems = 237 * 237
	wantOffsets := map[string]int{
		"GThP": 0,
		"A":    4,
		"B":    4 + 4*elems,
		"C":    4 + 8*elems,
		"n":    4 + 12*elems,
	}
	for name, want := range wantOffsets {
		got, err := l.Offset(name)
		if err != nil {
			t.Fatalf("Offset(%s): %v", name, err)
		}
		if got != want {
			t.Errorf("offset of %s = %d, want %d", name, got, want)
		}
	}
	if want := 8 + 12*elems; l.Size != want {
		t.Errorf("size = %d, want %d", l.Size, want)
	}
	if l.Align != 4 {
		t.Errorf("align = %d, want 4", l.Align)
	}
}

func TestGThVLayoutSameAcrossILP32(t *testing.T) {
	// On the paper's two machines (both ILP32) the struct layout is byte
	// identical; only the byte order inside each scalar differs.
	a := MustLayout(gthv(), platform.LinuxX86)
	b := MustLayout(gthv(), platform.SolarisSPARC)
	if a.Size != b.Size || a.Align != b.Align {
		t.Fatalf("ILP32 layouts differ: %d/%d vs %d/%d", a.Size, a.Align, b.Size, b.Align)
	}
	for i := range a.Fields {
		if a.Fields[i].Offset != b.Fields[i].Offset {
			t.Errorf("field %s offsets differ: %d vs %d",
				a.Fields[i].Name, a.Fields[i].Offset, b.Fields[i].Offset)
		}
	}
}

func TestGThVLayoutLP64(t *testing.T) {
	l := MustLayout(gthv(), platform.LinuxX8664)
	// Pointer widens to 8; arrays stay int32.
	if got, _ := l.Offset("A"); got != 8 {
		t.Errorf("A offset on LP64 = %d, want 8", got)
	}
}

func TestStructPadding(t *testing.T) {
	// struct { char c; double d; char e; } — classic padding case.
	s := Struct{Name: "P", Fields: []Field{
		{Name: "c", T: Char()},
		{Name: "d", T: Double()},
		{Name: "e", T: Char()},
	}}
	l := MustLayout(s, platform.LinuxX86)
	if got, _ := l.Offset("d"); got != 8 {
		t.Errorf("d offset = %d, want 8", got)
	}
	if l.Size != 24 {
		t.Errorf("size = %d, want 24", l.Size)
	}
	if l.Fields[0].PadAfter != 7 {
		t.Errorf("pad after c = %d, want 7", l.Fields[0].PadAfter)
	}
	if l.Fields[2].PadAfter != 7 {
		t.Errorf("tail pad = %d, want 7", l.Fields[2].PadAfter)
	}
}

func TestNestedStructLayout(t *testing.T) {
	inner := Struct{Name: "in", Fields: []Field{
		{Name: "x", T: Char()},
		{Name: "y", T: Int()},
	}}
	outer := Struct{Name: "out", Fields: []Field{
		{Name: "a", T: Char()},
		{Name: "b", T: inner},
		{Name: "c", T: Array{Elem: inner, N: 3}},
	}}
	l := MustLayout(outer, platform.LinuxX86)
	if got, _ := l.Offset("b"); got != 4 {
		t.Errorf("b offset = %d, want 4", got)
	}
	if got, _ := l.Offset("b", "y"); got != 8 {
		t.Errorf("b.y offset = %d, want 8", got)
	}
	// inner is size 8 (char + 3 pad + int), array of 3 = 24, at offset 12.
	if got, _ := l.Offset("c"); got != 12 {
		t.Errorf("c offset = %d, want 12", got)
	}
	if l.Size != 36 {
		t.Errorf("outer size = %d, want 36", l.Size)
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(nil, platform.LinuxX86); err == nil {
		t.Error("nil type must fail")
	}
	if _, err := NewLayout(Array{Elem: Int(), N: 0}, platform.LinuxX86); err == nil {
		t.Error("zero-length array must fail")
	}
	if _, err := NewLayout(Struct{Name: "e"}, platform.LinuxX86); err == nil {
		t.Error("empty struct must fail")
	}
	dup := Struct{Name: "d", Fields: []Field{{Name: "x", T: Int()}, {Name: "x", T: Int()}}}
	if _, err := NewLayout(dup, platform.LinuxX86); err == nil {
		t.Error("duplicate field must fail")
	}
	if _, err := NewLayout(Scalar{T: platform.CPtr}, platform.LinuxX86); err == nil {
		t.Error("Scalar{CPtr} must fail")
	}
}

func TestOffsetErrors(t *testing.T) {
	l := MustLayout(gthv(), platform.LinuxX86)
	if _, err := l.Offset("nope"); err == nil {
		t.Error("unknown member must fail")
	}
	if _, err := l.Offset("A", "x"); err == nil {
		t.Error("selecting into an array must fail")
	}
}

// randomType builds a random type tree of bounded depth for property tests.
func randomType(r *rand.Rand, depth int) Type {
	scalars := []Type{
		Int(), Double(), Char(), Long(),
		Scalar{T: platform.CShort}, Scalar{T: platform.CFloat},
		Scalar{T: platform.CLongLong}, Pointer{},
	}
	if depth <= 0 || r.Intn(3) == 0 {
		return scalars[r.Intn(len(scalars))]
	}
	switch r.Intn(3) {
	case 0:
		return Array{Elem: randomType(r, depth-1), N: 1 + r.Intn(5)}
	default:
		n := 1 + r.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: string(rune('a' + i)), T: randomType(r, depth-1)}
		}
		return Struct{Name: "s", Fields: fields}
	}
}

// Property: layouts satisfy the structural invariants on every platform —
// sizes are multiples of alignment, field offsets are aligned, monotone and
// non-overlapping.
func TestQuickLayoutInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		typ := randomType(r, 3)
		for _, p := range platform.All() {
			l, err := NewLayout(typ, p)
			if err != nil {
				t.Fatalf("layout of %s on %s: %v", TypeString(typ), p, err)
			}
			checkLayoutInvariants(t, l)
		}
	}
}

func checkLayoutInvariants(t *testing.T, l *Layout) {
	t.Helper()
	if l.Size%l.Align != 0 {
		t.Errorf("%s: size %d not a multiple of align %d", TypeString(l.Type), l.Size, l.Align)
	}
	prevEnd := 0
	for _, f := range l.Fields {
		if f.Offset%f.Layout.Align != 0 {
			t.Errorf("%s.%s: offset %d misaligned (align %d)",
				TypeString(l.Type), f.Name, f.Offset, f.Layout.Align)
		}
		if f.Offset < prevEnd {
			t.Errorf("%s.%s: offset %d overlaps previous end %d",
				TypeString(l.Type), f.Name, f.Offset, prevEnd)
		}
		if f.PadAfter < 0 {
			t.Errorf("%s.%s: negative padding %d", TypeString(l.Type), f.Name, f.PadAfter)
		}
		prevEnd = f.Offset + f.Layout.Size
		checkLayoutInvariants(t, f.Layout)
	}
	if l.Elem != nil {
		if l.Size != l.Elem.Size*l.N {
			t.Errorf("%s: array size %d != elem %d * %d", TypeString(l.Type), l.Size, l.Elem.Size, l.N)
		}
		checkLayoutInvariants(t, l.Elem)
	}
}

// Property: the tag sequence of a struct layout accounts for every byte of
// the struct — element bytes plus padding bytes equal the layout size.
func TestQuickTagBytesMatchLayoutSize(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		typ := randomType(r, 3)
		for _, p := range platform.All() {
			l := MustLayout(typ, p)
			seq := FromLayout(l)
			if seq.Bytes() != l.Size {
				t.Fatalf("%s on %s: tag bytes %d != layout size %d (tags %s)",
					TypeString(typ), p, seq.Bytes(), l.Size, seq)
			}
		}
	}
}

// Property: ILP32 pair (the paper's machines) always produces identical tag
// strings for the same type — the homogeneous string-compare fast path.
func TestQuickILP32TagStringsIdentical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		typ := randomType(r, 3)
		a := FromLayout(MustLayout(typ, platform.LinuxX86)).String()
		b := FromLayout(MustLayout(typ, platform.SolarisSPARC)).String()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
