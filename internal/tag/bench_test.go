package tag

import (
	"testing"

	"hetdsm/internal/platform"
)

// Tag machinery costs: generation is the t_tag kernel, parsing the
// receiver-side counterpart.

func BenchmarkLayoutGThV(b *testing.B) {
	typ := gthv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLayout(typ, platform.LinuxX86); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTagGenerationGThV(b *testing.B) {
	l := MustLayout(gthv(), platform.LinuxX86)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := FromLayout(l).String(); len(s) == 0 {
			b.Fatal("empty tag")
		}
	}
}

func BenchmarkTagParse(b *testing.B) {
	s := FromLayout(MustLayout(gthv(), platform.LinuxX86)).String()
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTagEqual(b *testing.B) {
	// The homogeneous fast-path check the paper performs on every update.
	x := FromLayout(MustLayout(gthv(), platform.LinuxX86))
	y := FromLayout(MustLayout(gthv(), platform.SolarisSPARC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("ILP32 tags must match")
		}
	}
}

func BenchmarkFlatten(b *testing.B) {
	seq := FromLayout(MustLayout(gthv(), platform.LinuxX86))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runs := seq.Flatten(); len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}
