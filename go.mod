module hetdsm

go 1.22
