package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/transport"
)

// The deadline benchmark: the recorded overhead budget for the deadline
// plane (per-operation budgets, bounded home queues, stall recovery). Two
// quantities matter:
//
//   - the disabled path — OpTimeout unset is the default, and every
//     deadline branch is gated on it: no queue wrapping at the home, no
//     budget stamping, no timers. What remains on the hot path is the
//     zero-deadline fallback through the transport helpers
//     (SendFrameDeadline/RecvFrameDeadline) — a nil-deadline check and a
//     type assertion per frame. This is gated hard at ≤2% of release
//     time, derived from measured ns/op of the fallback times the
//     helper-calls-per-release count, over the measured release time.
//   - the armed path — OpTimeout set to a generous budget that never
//     fires, reported as the wall-clock ratio against the disabled run.
//     Informative, not gated: arming the plane is opt-in, and its cost
//     (queue wrapping, per-frame stamps, socket deadlines) is the price
//     of bounded blocking, visible here so regressions stay visible.

// deadlineBenchDoc is the BENCH_deadline.json schema.
type deadlineBenchDoc struct {
	Benchmark string `json:"benchmark"`
	Reps      int    `json:"reps"`
	// Micro: the zero-deadline helper fallbacks on a no-op conn. Upper
	// bounds — they include the no-op frame handoff itself.
	SendFallbackNsPerOp float64 `json:"send_fallback_ns_per_op"`
	RecvFallbackNsPerOp float64 `json:"recv_fallback_ns_per_op"`
	// Conservative helper-call counts for one release (lock request/grant
	// plus sync update/ack, both endpoints).
	SendCallsPerRelease int `json:"send_calls_per_release"`
	RecvCallsPerRelease int `json:"recv_calls_per_release"`
	// The armed-but-never-firing budget used for the armed runs.
	OpTimeoutSeconds float64 `json:"op_timeout_seconds"`
	// Macro: one matmul workload, OpTimeout unset vs armed.
	Releases         int     `json:"releases"`
	WallUnsetSeconds float64 `json:"wall_unset_seconds"`
	WallArmedSeconds float64 `json:"wall_armed_seconds"`
	// DisabledOverheadPct = releases × fallback cost / unset wall — the
	// gated number.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	// ArmedOverheadPct is the armed-path wall ratio minus one.
	ArmedOverheadPct float64 `json:"armed_overhead_pct"`
}

const (
	deadlineBenchN        = 96
	deadlineBenchTimeout  = 10 * time.Second
	dlSendCallsPerRelease = 4
	dlRecvCallsPerRelease = 4
)

// nullConn is a no-op transport.Conn: the micro benchmarks time the
// helper fallback itself, not a real transport.
type nullConn struct{}

func (nullConn) SendFrame([]byte) error     { return nil }
func (nullConn) RecvFrame() ([]byte, error) { return nil, nil }
func (nullConn) Close() error               { return nil }

// runDeadlineBench measures the suite, reps times each macro config,
// keeping the fastest rep (minimum as the noise-robust estimator).
func runDeadlineBench(reps int) (*deadlineBenchDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &deadlineBenchDoc{
		Benchmark:           "deadline",
		Reps:                reps,
		SendCallsPerRelease: dlSendCallsPerRelease,
		RecvCallsPerRelease: dlRecvCallsPerRelease,
		OpTimeoutSeconds:    deadlineBenchTimeout.Seconds(),
	}

	// Micro: the zero-deadline fallbacks. These are what every deployment
	// that never sets OpTimeout pays per frame after this PR.
	var c nullConn
	frame := make([]byte, 64)
	var none time.Time
	doc.SendFallbackNsPerOp = nsPerOp(func() {
		_ = transport.SendFrameDeadline(c, frame, none)
	})
	doc.RecvFallbackNsPerOp = nsPerOp(func() {
		_, _ = transport.RecvFrameDeadline(c, none)
	})

	// Macro: the same workload with the plane off and armed-but-idle.
	pair, _ := apps.PairByLabel("SL")
	run := func(armed bool) (time.Duration, error) {
		walls := make([]time.Duration, 0, reps)
		for i := 0; i < reps; i++ {
			opts := dsd.DefaultOptions()
			if armed {
				opts.OpTimeout = deadlineBenchTimeout
				opts.StickyLocks = true
			}
			start := time.Now()
			if _, err := apps.Run(apps.Config{
				Workload: "matmul", N: deadlineBenchN, Pair: pair,
				Opts: opts, Seed: 20060814,
			}); err != nil {
				return 0, fmt.Errorf("deadline bench (armed=%v): %w", armed, err)
			}
			walls = append(walls, time.Since(start))
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		return walls[0], nil
	}
	wallUnset, err := run(false)
	if err != nil {
		return nil, err
	}
	wallArmed, err := run(true)
	if err != nil {
		return nil, err
	}

	// Count releases the same way the tracing bench does: one untimed
	// instrumented run, StageShip spans = releases.
	spans := telemetry.NewSpanLog(1 << 18)
	opts := dsd.DefaultOptions()
	opts.Spans = spans
	if _, err := apps.Run(apps.Config{
		Workload: "matmul", N: deadlineBenchN, Pair: pair,
		Opts: opts, Seed: 20060814,
	}); err != nil {
		return nil, fmt.Errorf("deadline bench (release count): %w", err)
	}
	for _, s := range spans.Spans() {
		if s.Stage == telemetry.StageShip {
			doc.Releases++
		}
	}

	doc.WallUnsetSeconds = wallUnset.Seconds()
	doc.WallArmedSeconds = wallArmed.Seconds()
	hookNs := float64(doc.Releases) * (float64(dlSendCallsPerRelease)*doc.SendFallbackNsPerOp +
		float64(dlRecvCallsPerRelease)*doc.RecvFallbackNsPerOp)
	doc.DisabledOverheadPct = 100 * hookNs / float64(wallUnset.Nanoseconds())
	doc.ArmedOverheadPct = 100 * (wallArmed.Seconds()/wallUnset.Seconds() - 1)
	return doc, nil
}

// deadline measures the suite and writes the budget file.
func (h *harness) deadline(out string) {
	header(fmt.Sprintf("Deadline-plane overhead: OpTimeout unset vs armed-but-idle\n(best of %d reps; written to %s)", maxInt(h.reps, 1), out))
	doc, err := runDeadlineBench(h.reps)
	if err != nil {
		fatal(err)
	}
	printDeadline(doc)
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}

func printDeadline(doc *deadlineBenchDoc) {
	fmt.Printf("zero-deadline send fallback: %.2f ns/op\n", doc.SendFallbackNsPerOp)
	fmt.Printf("zero-deadline recv fallback: %.2f ns/op\n", doc.RecvFallbackNsPerOp)
	fmt.Printf("releases measured:           %d (matmul N=%d)\n", doc.Releases, deadlineBenchN)
	fmt.Printf("wall unset/armed:            %.3f ms / %.3f ms (armed budget %v, never fires)\n",
		1e3*doc.WallUnsetSeconds, 1e3*doc.WallArmedSeconds, deadlineBenchTimeout)
	fmt.Printf("disabled-path overhead: %.4f%% of release time (budget 2%%)\n", doc.DisabledOverheadPct)
	fmt.Printf("armed-path overhead:    %.2f%% wall (informative)\n", doc.ArmedOverheadPct)
}

// deadlineCheck re-measures and enforces the budget: the OpTimeout-unset
// path must stay within 2% of release time. The recorded baseline is
// printed for trajectory but the bar is absolute — the whole point of the
// number is that a deployment that never sets OpTimeout never notices the
// deadline plane exists.
func (h *harness) deadlineCheck(baselinePath string) {
	header(fmt.Sprintf("Deadline-plane budget check against %s\n(fails when the disabled-path overhead exceeds 2%%)", baselinePath))
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	var base deadlineBenchDoc
	if err := json.Unmarshal(blob, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", baselinePath, err))
	}
	cur, err := runDeadlineBench(h.reps)
	if err != nil {
		fatal(err)
	}
	printDeadline(cur)
	fmt.Printf("baseline disabled-path overhead: %.4f%%\n", base.DisabledOverheadPct)
	if cur.DisabledOverheadPct > 2.0 {
		fatal(fmt.Errorf("disabled-path deadline overhead %.4f%% exceeds the 2%% budget", cur.DisabledOverheadPct))
	}
	fmt.Println("\ndisabled-path deadline overhead within the 2% budget")
}
