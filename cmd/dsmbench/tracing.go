package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/telemetry"
)

// The tracing benchmark: the recorded overhead budget for causal tracing
// and the flight recorder. Two quantities matter:
//
//   - the disabled path — a node built without telemetry holds nil
//     handles, so the only cost tracing adds to every deployment is the
//     nil-guarded calls on the release pipeline. This is gated hard at
//     ≤2% of release time (the budget that justifies compiling the hooks
//     in unconditionally), derived from measured ns/op of the nil calls
//     times the calls-per-release count, over the measured release time.
//   - the enabled path — spans plus flight ring armed, reported as the
//     wall-clock ratio against the disabled run. Informative, not gated:
//     the enabled path is opt-in and its cost shows up in /spans anyway.

// tracingBenchDoc is the BENCH_tracing.json schema.
type tracingBenchDoc struct {
	Benchmark string `json:"benchmark"`
	Reps      int    `json:"reps"`
	// Micro: the nil-receiver hook costs.
	NilSpanNsPerOp float64 `json:"nil_span_ns_per_op"`
	NilNoteNsPerOp float64 `json:"nil_note_ns_per_op"`
	// The pipeline's hook counts for one release (sender index/tag/pack/
	// ship + home unpack/conv/apply spans; grant + epoch flight notes).
	SpanCallsPerRelease int `json:"span_calls_per_release"`
	NoteCallsPerRelease int `json:"note_calls_per_release"`
	// Macro: one matmul workload, telemetry off vs on.
	Releases            int     `json:"releases"`
	WallDisabledSeconds float64 `json:"wall_disabled_seconds"`
	WallEnabledSeconds  float64 `json:"wall_enabled_seconds"`
	// DisabledOverheadPct = releases × hook cost / disabled wall — the
	// gated number.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	// EnabledOverheadPct is the armed-path wall ratio minus one.
	EnabledOverheadPct float64 `json:"enabled_overhead_pct"`
}

const (
	spanCallsPerRelease = 7
	noteCallsPerRelease = 2
	tracingBenchN       = 96
)

// nsPerOp times f over enough iterations to outlast timer granularity.
func nsPerOp(f func()) float64 {
	const iters = 2_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// runTracingBench measures the suite, reps times each macro config,
// keeping the fastest rep (minimum as the noise-robust estimator).
func runTracingBench(reps int) (*tracingBenchDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &tracingBenchDoc{
		Benchmark:           "tracing",
		Reps:                reps,
		SpanCallsPerRelease: spanCallsPerRelease,
		NoteCallsPerRelease: noteCallsPerRelease,
	}

	// Micro: the disabled hooks. These are what every untelemetried node
	// pays per call after this PR.
	var nilSpans *telemetry.SpanLog
	var nilFlight *flight.Recorder
	t0 := time.Unix(0, 0)
	doc.NilSpanNsPerOp = nsPerOp(func() {
		nilSpans.RecordCtx("n", telemetry.StageShip, 0, 1, 0xbeef, 0x77, t0, time.Microsecond, 64)
	})
	doc.NilNoteNsPerOp = nsPerOp(func() {
		nilFlight.Note("n", flight.KindGrant, 0, 1, 2)
	})

	// Macro: the same workload with telemetry off and armed.
	pair, _ := apps.PairByLabel("SL")
	run := func(armed bool) (time.Duration, int, error) {
		walls := make([]time.Duration, 0, reps)
		releases := 0
		for i := 0; i < reps; i++ {
			opts := dsd.DefaultOptions()
			var spans *telemetry.SpanLog
			if armed {
				spans = telemetry.NewSpanLog(1 << 18)
				opts.Spans = spans
				opts.Flight = flight.New(4096)
			}
			start := time.Now()
			_, err := apps.Run(apps.Config{
				Workload: "matmul", N: tracingBenchN, Pair: pair,
				Opts: opts, Seed: 20060814,
			})
			if err != nil {
				return 0, 0, fmt.Errorf("tracing bench (armed=%v): %w", armed, err)
			}
			walls = append(walls, time.Since(start))
			if armed {
				for _, s := range spans.Spans() {
					if s.Stage == telemetry.StageShip {
						releases++
					}
				}
			}
		}
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		return walls[0], releases / reps, nil
	}
	wallOff, _, err := run(false)
	if err != nil {
		return nil, err
	}
	wallOn, releases, err := run(true)
	if err != nil {
		return nil, err
	}
	doc.Releases = releases
	doc.WallDisabledSeconds = wallOff.Seconds()
	doc.WallEnabledSeconds = wallOn.Seconds()
	hookNs := float64(releases) * (float64(spanCallsPerRelease)*doc.NilSpanNsPerOp +
		float64(noteCallsPerRelease)*doc.NilNoteNsPerOp)
	doc.DisabledOverheadPct = 100 * hookNs / float64(wallOff.Nanoseconds())
	doc.EnabledOverheadPct = 100 * (wallOn.Seconds()/wallOff.Seconds() - 1)
	return doc, nil
}

// tracing measures the suite and writes the budget file.
func (h *harness) tracing(out string) {
	header(fmt.Sprintf("Tracing overhead: nil hooks and armed spans+flight\n(best of %d reps; written to %s)", maxInt(h.reps, 1), out))
	doc, err := runTracingBench(h.reps)
	if err != nil {
		fatal(err)
	}
	printTracing(doc)
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", out)
}

func printTracing(doc *tracingBenchDoc) {
	fmt.Printf("nil SpanLog.RecordCtx: %.2f ns/op\n", doc.NilSpanNsPerOp)
	fmt.Printf("nil Recorder.Note:     %.2f ns/op\n", doc.NilNoteNsPerOp)
	fmt.Printf("releases measured:     %d (matmul N=%d)\n", doc.Releases, tracingBenchN)
	fmt.Printf("wall disabled/enabled: %.3f ms / %.3f ms\n",
		1e3*doc.WallDisabledSeconds, 1e3*doc.WallEnabledSeconds)
	fmt.Printf("disabled-path overhead: %.4f%% of release time (budget 2%%)\n", doc.DisabledOverheadPct)
	fmt.Printf("enabled-path overhead:  %.2f%% wall (informative)\n", doc.EnabledOverheadPct)
}

// tracingCheck re-measures and enforces the budget: the disabled path
// must stay within 2% of release time. The recorded baseline is printed
// for trajectory but the bar is absolute — the whole point of the number
// is that a node without -metrics-addr never notices this subsystem.
func (h *harness) tracingCheck(baselinePath string) {
	header(fmt.Sprintf("Tracing budget check against %s\n(fails when the disabled-path overhead exceeds 2%%)", baselinePath))
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	var base tracingBenchDoc
	if err := json.Unmarshal(blob, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", baselinePath, err))
	}
	cur, err := runTracingBench(h.reps)
	if err != nil {
		fatal(err)
	}
	printTracing(cur)
	fmt.Printf("baseline disabled-path overhead: %.4f%%\n", base.DisabledOverheadPct)
	if cur.DisabledOverheadPct > 2.0 {
		fatal(fmt.Errorf("disabled-path tracing overhead %.4f%% exceeds the 2%% budget", cur.DisabledOverheadPct))
	}
	fmt.Println("\ndisabled-path tracing overhead within the 2% budget")
}
