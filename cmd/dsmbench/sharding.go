package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/sim"
)

// The sharding benchmark: the recorded perf baseline for the multi-home
// sharded directory. It measures the same workloads single-home (shards=1)
// and sharded (2, 4), writes BENCH_sharding.json, and -sharding-check
// replays the suite against a recorded file, failing on >10% Cshare
// regression — the PR-over-PR trajectory gate.
//
// The gated quantity is the sharding overhead ratio — Cshare at N shards
// over Cshare at 1 shard, both measured in the same process — not raw
// milliseconds. Absolute times drift with the machine and its load; the
// ratio cancels both, so the gate trips only when sharding itself got more
// expensive relative to the single-home path.

// shardBenchEntry is one measured configuration.
type shardBenchEntry struct {
	Workload      string  `json:"workload"`
	N             int     `json:"n"`
	Pair          string  `json:"pair"`
	Shards        int     `json:"shards"`
	CshareSeconds float64 `json:"cshare_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	UpdateBytes   uint64  `json:"update_bytes,omitempty"`
	Migrations    uint64  `json:"migrations,omitempty"`
	Events        int     `json:"events,omitempty"`
	// Throughput is runs/second for app workloads and events/second for
	// the dsmsim mix — a coarse scale signal beside the Cshare breakdown.
	Throughput float64 `json:"throughput"`
}

func (e shardBenchEntry) key() string {
	return fmt.Sprintf("%s/N%d/%s/shards%d", e.Workload, e.N, e.Pair, e.Shards)
}

// shardBenchDoc is the BENCH_sharding.json schema.
type shardBenchDoc struct {
	Benchmark string            `json:"benchmark"`
	Reps      int               `json:"reps"`
	Entries   []shardBenchEntry `json:"entries"`
}

var shardCounts = []int{1, 2, 4}

// runShardingBench measures every configuration, reps times each, keeping
// the fastest-by-Cshare rep (the minimum is the noise-robust estimator for
// CPU-bound timings; slower reps are contention, not the workload).
func runShardingBench(reps int, verify bool) (*shardBenchDoc, error) {
	if reps < 1 {
		reps = 1
	}
	doc := &shardBenchDoc{Benchmark: "sharding", Reps: reps}

	// Sizes picked so Cshare is tens of milliseconds: large enough that
	// scheduler noise doesn't swamp the overhead ratios, small enough for a
	// CI smoke.
	for _, wl := range []struct {
		name string
		n    int
	}{{"matmul", 96}, {"lu", 64}} {
		for _, shards := range shardCounts {
			e, err := appShardEntry(wl.name, wl.n, shards, 0, reps, verify)
			if err != nil {
				return nil, err
			}
			doc.Entries = append(doc.Entries, e)
		}
	}
	// Heat-driven migration armed: the live re-homing cost rides the same
	// trajectory file, so a regression in the migration path is visible
	// even when the static-sharding numbers hold.
	mig, err := appShardEntry("matmul", 96, 4, 2, reps, verify)
	if err != nil {
		return nil, err
	}
	mig.Workload = "matmul+migrate"
	doc.Entries = append(doc.Entries, mig)

	// The dsmsim mix: the simulator's seeded lock/barrier/slice workload,
	// single-home vs sharded, measured by wall time over recorded events.
	for _, shards := range shardCounts {
		e, err := simShardEntry(shards, reps)
		if err != nil {
			return nil, err
		}
		doc.Entries = append(doc.Entries, e)
	}
	return doc, nil
}

func appShardEntry(workload string, n, shards int, migThresh uint64, reps int, verify bool) (shardBenchEntry, error) {
	pair, _ := apps.PairByLabel("SL")
	results := make([]*apps.Result, 0, reps)
	walls := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := apps.Run(apps.Config{
			Workload: workload, N: n, Pair: pair,
			Shards: shards, MigrateThreshold: migThresh,
			Verify: verify, Seed: 20060814,
		})
		if err != nil {
			return shardBenchEntry{}, fmt.Errorf("sharding bench %s N=%d shards=%d: %w", workload, n, shards, err)
		}
		results = append(results, res)
		walls = append(walls, time.Since(start))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].AggTotal() < results[j].AggTotal() })
	res := results[0]
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	wall := walls[0]
	e := shardBenchEntry{
		Workload:      workload,
		N:             n,
		Pair:          pair.Label,
		Shards:        shards,
		CshareSeconds: res.AggTotal().Seconds(),
		WallSeconds:   wall.Seconds(),
		UpdateBytes:   res.UpdateBytes,
		Throughput:    1 / wall.Seconds(),
	}
	if res.Dir != nil {
		e.Migrations = res.Dir.Migrations
	}
	return e, nil
}

func simShardEntry(shards int, reps int) (shardBenchEntry, error) {
	plan := sim.NewPlan(20060814, sim.ProfileClean, "SL")
	plan.Shards = shards
	var events int
	walls := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		res := sim.Run(plan)
		if !res.OK() {
			return shardBenchEntry{}, fmt.Errorf("sharding bench dsmsim shards=%d:\n%s", shards, res.Report())
		}
		walls = append(walls, time.Since(start))
		events = res.Events
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	wall := walls[0]
	return shardBenchEntry{
		Workload:    "dsmsim-clean",
		N:           plan.Steps,
		Pair:        plan.Mix,
		Shards:      shards,
		WallSeconds: wall.Seconds(),
		Events:      events,
		Throughput:  float64(events) / wall.Seconds(),
	}, nil
}

// sharding measures the suite and writes the baseline file.
func (h *harness) sharding(out string) {
	header(fmt.Sprintf("Sharding baseline: 1 vs N home shards, Cshare and throughput\n(best of %d reps; written to %s)", maxInt(h.reps, 1), out))
	doc, err := runShardingBench(h.reps, h.verify)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-16s %6s %5s %7s %12s %12s %12s\n",
		"workload", "N", "pair", "shards", "Cshare(ms)", "wall(ms)", "throughput")
	for _, e := range doc.Entries {
		fmt.Printf("%-16s %6d %5s %7d %12.3f %12.3f %12.1f\n",
			e.Workload, e.N, e.Pair, e.Shards, 1e3*e.CshareSeconds, 1e3*e.WallSeconds, e.Throughput)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %d entries to %s\n", len(doc.Entries), out)
}

// overheads reduces a doc to the gated quantity: for every sharded app
// entry, its Cshare divided by the same workload's shards=1 Cshare from the
// same run. Keyed by entry key; dsmsim entries (no Cshare) are absent.
func (d *shardBenchDoc) overheads() map[string]float64 {
	base := make(map[string]float64) // bare workload name -> shards=1 Cshare
	for _, e := range d.Entries {
		if e.Shards == 1 && e.CshareSeconds > 0 {
			base[strings.SplitN(e.Workload, "+", 2)[0]] = e.CshareSeconds
		}
	}
	out := make(map[string]float64)
	for _, e := range d.Entries {
		if e.Shards == 1 || e.CshareSeconds == 0 {
			continue
		}
		if b := base[strings.SplitN(e.Workload, "+", 2)[0]]; b > 0 {
			out[e.key()] = e.CshareSeconds / b
		}
	}
	return out
}

// shardingCheck re-measures the suite and compares each configuration's
// sharding overhead ratio against the recorded baseline, failing on >10%
// regression. The dsmsim mix has no Cshare and is reported but not gated.
func (h *harness) shardingCheck(baselinePath string) {
	header(fmt.Sprintf("Sharding regression check against %s\n(fails when a config's Cshare overhead vs shards=1 grows >10%%)", baselinePath))
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline: %w", err))
	}
	var base shardBenchDoc
	if err := json.Unmarshal(blob, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", baselinePath, err))
	}
	cur, err := runShardingBench(h.reps, h.verify)
	if err != nil {
		fatal(err)
	}
	baseOv, curOv := base.overheads(), cur.overheads()
	gated, failed := 0, 0
	for _, e := range cur.Entries {
		key := e.key()
		co, ok := curOv[key]
		if !ok {
			fmt.Printf("skip      %-40s wall=%.3fms — no Cshare overhead to gate\n", key, 1e3*e.WallSeconds)
			continue
		}
		bo, ok := baseOv[key]
		if !ok {
			fmt.Printf("NEW       %-40s overhead=%.3fx (no baseline entry)\n", key, co)
			continue
		}
		if strings.Contains(e.Workload, "+") {
			// Migration-armed configs race a background ticker, so how much
			// re-homing work a run contains is itself timing-dependent —
			// informative trajectory, not a fair pass/fail bar.
			fmt.Printf("info      %-40s overhead=%.3fx baseline=%.3fx (%d migrations) — not gated\n",
				key, co, bo, e.Migrations)
			continue
		}
		gated++
		// A recorded overhead below 1.0x — sharded faster than single-home —
		// is measurement luck, not a bar future runs can clear; floor it.
		if bo < 1 {
			bo = 1
		}
		verdict := "ok"
		// 10% multiplicative gate plus an additive allowance for scheduler
		// noise: on a time-shared CI runner the overhead ratio jitters by
		// ~±0.2 run-to-run at smoke sizes, so without the slack the gate
		// flakes on identical code. Real structural regressions (a protocol
		// change doubling sharded Cshare) clear both terms easily.
		const noiseSlack = 0.25
		if co > 1.10*bo+noiseSlack {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("%-9s %-40s overhead=%.3fx baseline=%.3fx (%+.1f%%)\n",
			verdict, key, co, bo, 100*(co/bo-1))
	}
	if gated == 0 {
		fatal(fmt.Errorf("no gateable configurations shared with %s", baselinePath))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d configuration(s) regressed >10%% vs %s", failed, baselinePath))
	}
	fmt.Println("\nno sharding overhead regression >10%")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
