// Command dsmbench regenerates every table and figure of the paper's
// evaluation (Section 5) from this reproduction.
//
// Usage:
//
//	dsmbench -all                 # everything
//	dsmbench -fig 6               # one figure (3, 6, 7, 8, 9, 10, 11)
//	dsmbench -table 1             # the index-table artifact
//	dsmbench -fig 10 -sizes 99,138 -reps 3
//
// Figures 6–11 are measured live by running the paper's workloads (matrix
// multiplication and LU decomposition; 3 threads, two on the remote
// platform) across the three platform pairs LL, SS and SL. Table 1 and
// Figure 3 are exact artifacts and print byte-identically to the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/indextable"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/vmem"
)

func main() {
	var (
		figFlag   = flag.Int("fig", 0, "figure to regenerate (3, 6, 7, 8, 9, 10, 11)")
		tableFlag = flag.Int("table", 0, "table to regenerate (1)")
		allFlag   = flag.Bool("all", false, "regenerate everything")
		extFlag   = flag.Bool("ext", false, "run the extension experiments (word-size pairs, jacobi)")
		ablFlag   = flag.Bool("ablation", false, "run the design-choice ablations (DESIGN.md §5)")
		sizesFlag = flag.String("sizes", "99,138,177,216,255", "comma-separated matrix sizes")
		repsFlag  = flag.Int("reps", 1, "repetitions per configuration (medians reported)")
		verify    = flag.Bool("verify", false, "verify every distributed result against a sequential run")
		shardFlag = flag.Bool("sharding", false, "run the 1-vs-N-shard benchmark and write the baseline file")
		shardOut  = flag.String("sharding-out", "BENCH_sharding.json", "output path for -sharding")
		shardChk  = flag.String("sharding-check", "", "re-run the sharding suite and fail on >10% Cshare regression vs this baseline file")
		traceFlag = flag.Bool("tracing", false, "measure tracing/flight-recorder overhead and write the budget file")
		traceOut  = flag.String("tracing-out", "BENCH_tracing.json", "output path for -tracing")
		traceChk  = flag.String("tracing-check", "", "re-measure tracing overhead and fail if the disabled path exceeds 2% vs this baseline file")
		dlFlag    = flag.Bool("deadline", false, "measure deadline-plane overhead (OpTimeout unset vs armed-but-idle) and write the budget file")
		dlOut     = flag.String("deadline-out", "BENCH_deadline.json", "output path for -deadline")
		dlChk     = flag.String("deadline-check", "", "re-measure deadline-plane overhead and fail if the armed-but-idle path exceeds 2% vs this baseline file")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fatal(err)
	}
	h := &harness{sizes: sizes, reps: *repsFlag, verify: *verify}

	switch {
	case *allFlag:
		h.table1()
		h.fig3()
		h.fig6()
		h.fig7()
		h.fig8()
		h.fig9()
		h.fig10()
		h.fig11()
		h.ext()
		h.ablation()
	case *tableFlag == 1:
		h.table1()
	case *figFlag == 3:
		h.fig3()
	case *figFlag == 6:
		h.fig6()
	case *figFlag == 7:
		h.fig7()
	case *figFlag == 8:
		h.fig8()
	case *figFlag == 9:
		h.fig9()
	case *figFlag == 10:
		h.fig10()
	case *figFlag == 11:
		h.fig11()
	case *extFlag:
		h.ext()
	case *ablFlag:
		h.ablation()
	case *shardFlag:
		h.sharding(*shardOut)
	case *shardChk != "":
		h.shardingCheck(*shardChk)
	case *traceFlag:
		h.tracing(*traceOut)
	case *traceChk != "":
		h.tracingCheck(*traceChk)
	case *dlFlag:
		h.deadline(*dlOut)
	case *dlChk != "":
		h.deadlineCheck(*dlChk)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmbench:", err)
	os.Exit(1)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

type runKey struct {
	workload string
	pair     string
	n        int
}

type harness struct {
	sizes  []int
	reps   int
	verify bool
	cache  map[runKey]*apps.Result
}

// run executes (and memoizes) one configuration, taking the median total
// over reps repetitions.
func (h *harness) run(workload, pairLabel string, n int) *apps.Result {
	if h.cache == nil {
		h.cache = make(map[runKey]*apps.Result)
	}
	key := runKey{workload, pairLabel, n}
	if r, ok := h.cache[key]; ok {
		return r
	}
	pair, ok := apps.PairByLabel(pairLabel)
	if !ok {
		fatal(fmt.Errorf("unknown pair %q", pairLabel))
	}
	reps := h.reps
	if reps < 1 {
		reps = 1
	}
	results := make([]*apps.Result, 0, reps)
	for i := 0; i < reps; i++ {
		res, err := apps.Run(apps.Config{
			Workload: workload, N: n, Pair: pair,
			Verify: h.verify, Seed: 20060814,
		})
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].AggTotal() < results[j].AggTotal() })
	res := results[len(results)/2]
	h.cache[key] = res
	return res
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// table1 prints the index table of Figure 4's struct — the paper's Table 1.
func (h *harness) table1() {
	header("Table 1: index table generated from the Figure 4 structure\n(base 0x40058000, linux-x86)")
	const n = 237 * 237
	gthv := tag.Struct{Name: "GThV_t", Fields: []tag.Field{
		{Name: "GThP", T: tag.Pointer{}},
		{Name: "A", T: tag.IntArray(n)},
		{Name: "B", T: tag.IntArray(n)},
		{Name: "C", T: tag.IntArray(n)},
		{Name: "n", T: tag.Int()},
	}}
	tb, err := indextable.Build(tag.MustLayout(gthv, platform.LinuxX86), 0x40058000)
	if err != nil {
		fatal(err)
	}
	fmt.Print(tb.Format())
}

// fig3 prints the run-time tag strings of Figure 3.
func (h *harness) fig3() {
	header("Figure 3: tag calculation at run-time (linux-x86)")
	p := platform.LinuxX86
	ptr := tag.MustLayout(tag.Pointer{}, p)
	ci := tag.MustLayout(tag.Int(), p)
	mthv := tag.VarFrame([]*tag.Layout{ptr, ci, ci}, 8).String()
	mthp := tag.VarFrame([]*tag.Layout{ptr, ptr}, 0).String()
	fmt.Printf("char MThV_heter[60]=%q;\n", mthv)
	fmt.Printf("char MThP_heter[41]=%q;\n", mthp)
}

// fig6 prints the absolute data-sharing overhead breakdown for matmul.
func (h *harness) fig6() {
	header("Figure 6: data sharing overhead breakdown, matrix multiplication\n(milliseconds per run; stacked components of Eq. 1)")
	fmt.Printf("%8s %5s %10s %10s %10s %10s %10s %10s\n",
		"N", "pair", "index", "tag", "pack", "unpack", "conv", "Cshare")
	for _, n := range h.sizes {
		for _, pair := range apps.Pairs() {
			res := h.run("matmul", pair.Label, n)
			fmt.Printf("%8d %5s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				n, pair.Label,
				ms(res.Agg[stats.Index]), ms(res.Agg[stats.Tag]),
				ms(res.Agg[stats.Pack]), ms(res.Agg[stats.Unpack]),
				ms(res.Agg[stats.Conv]), ms(res.AggTotal()))
		}
	}
}

// fig7 prints the same components as percentages of Cshare.
func (h *harness) fig7() {
	header("Figure 7: costs as a percentage of total data-sharing time,\nmatrix multiplication")
	fmt.Printf("%8s %5s %9s %9s %9s %9s %9s\n",
		"N", "pair", "index%", "tag%", "pack%", "unpack%", "conv%")
	for _, pair := range apps.Pairs() {
		for _, n := range h.sizes {
			res := h.run("matmul", pair.Label, n)
			total := res.AggTotal()
			pct := func(p stats.Phase) float64 {
				if total == 0 {
					return 0
				}
				return 100 * float64(res.Agg[p]) / float64(total)
			}
			fmt.Printf("%8d %5s %9.1f %9.1f %9.1f %9.1f %9.1f\n",
				n, pair.Label,
				pct(stats.Index), pct(stats.Tag), pct(stats.Pack),
				pct(stats.Unpack), pct(stats.Conv))
		}
	}
}

// seriesByPlatform prints one Eq. 1 phase per release-side platform from SL
// runs (Figures 8 and 9).
func (h *harness) seriesByPlatform(phase stats.Phase, what string) {
	fmt.Printf("%8s %14s %14s\n", "N", "Solaris (s)", "Linux (s)")
	for _, n := range h.sizes {
		res := h.run("matmul", "SL", n)
		sol := res.ByPlatform[platform.SolarisSPARC.Name][phase]
		lin := res.ByPlatform[platform.LinuxX86.Name][phase]
		fmt.Printf("%8d %14.6f %14.6f\n", n, sol.Seconds(), lin.Seconds())
	}
	_ = what
}

func (h *harness) fig8() {
	header("Figure 8: mapping writes to application-level indexes (t_index),\nmatrix multiplication, per release-side platform")
	h.seriesByPlatform(stats.Index, "index discovery")
}

func (h *harness) fig9() {
	header("Figure 9: forming application-level tags from indexes (t_tag),\nmatrix multiplication, per release-side platform")
	h.seriesByPlatform(stats.Tag, "tag generation")
}

// convFigure prints home-side conversion time per pair (Figures 10/11).
func (h *harness) convFigure(workload string) {
	fmt.Printf("%8s %16s %16s %16s\n", "N", "Solaris/Linux", "Solaris/Solaris", "Linux/Linux")
	for _, n := range h.sizes {
		sl := h.run(workload, "SL", n)
		ss := h.run(workload, "SS", n)
		ll := h.run(workload, "LL", n)
		fmt.Printf("%8d %16.6f %16.6f %16.6f\n",
			n,
			sl.Home[stats.Conv].Seconds(),
			ss.Home[stats.Conv].Seconds(),
			ll.Home[stats.Conv].Seconds())
	}
}

func (h *harness) fig10() {
	header("Figure 10: data conversion at the home node (t_conv),\nmatrix multiplication")
	h.convFigure("matmul")
}

func (h *harness) fig11() {
	header("Figure 11: data conversion at the home node (t_conv),\nLU decomposition")
	h.convFigure("lu")
}

// ext runs the beyond-the-paper experiments: word-size-heterogeneous pairs
// and the Jacobi stencil workload.
func (h *harness) ext() {
	header("Extension: word-size heterogeneity (ILP32 vs LP64),\nmatrix multiplication N=138, conversion at the home node")
	fmt.Printf("%8s %12s %12s\n", "pair", "t_conv (s)", "Cshare (s)")
	for _, pair := range apps.ExtPairs() {
		res := h.run("matmul", pair.Label, 138)
		fmt.Printf("%8s %12.6f %12.6f\n", pair.Label,
			res.Home[stats.Conv].Seconds(), res.AggTotal().Seconds())
	}

	header("Extension: Jacobi iteration (barrier-per-sweep stencil), N=99,\n10 sweeps, full Cshare per pair")
	fmt.Printf("%8s %10s %10s %10s %10s %10s %10s\n",
		"pair", "index", "tag", "pack", "unpack", "conv", "Cshare")
	for _, pair := range apps.Pairs() {
		res, err := apps.Run(apps.Config{
			Workload: "jacobi", N: 99, Iters: 10, Pair: pair,
			Verify: h.verify, Seed: 20060814,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			pair.Label,
			ms(res.Agg[stats.Index]), ms(res.Agg[stats.Tag]),
			ms(res.Agg[stats.Pack]), ms(res.Agg[stats.Unpack]),
			ms(res.Agg[stats.Conv]), ms(res.AggTotal()))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ablation quantifies the DESIGN.md §5 design choices on matmul N=138 over
// the heterogeneous pair.
func (h *harness) ablation() {
	header("Ablations: design choices, matrix multiplication N=138, pair SL\n(milliseconds per run)")
	configs := []struct {
		name string
		mod  func(*dsd.Options)
	}{
		{"baseline (paper)", nil},
		{"no coalescing", func(o *dsd.Options) { o.Coalesce = false }},
		{"no whole-array", func(o *dsd.Options) { o.WholeArrayThreshold = 0 }},
		{"word-wise diff", func(o *dsd.Options) { o.Diff = vmem.DiffWord }},
		{"invalidate protocol", func(o *dsd.Options) { o.Protocol = dsd.ProtocolInvalidate }},
	}
	pair, _ := apps.PairByLabel("SL")
	fmt.Printf("%-22s %8s %8s %8s %8s %8s %10s %12s\n",
		"configuration", "index", "tag", "pack", "unpack", "conv", "Cshare", "bytes moved")
	for _, c := range configs {
		opts := dsd.DefaultOptions()
		if c.mod != nil {
			c.mod(&opts)
		}
		res, err := apps.Run(apps.Config{
			Workload: "matmul", N: 138, Pair: pair, Opts: opts,
			Verify: h.verify, Seed: 20060814,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %8.3f %8.3f %8.3f %8.3f %8.3f %10.3f %12d\n",
			c.name,
			ms(res.Agg[stats.Index]), ms(res.Agg[stats.Tag]),
			ms(res.Agg[stats.Pack]), ms(res.Agg[stats.Unpack]),
			ms(res.Agg[stats.Conv]), ms(res.AggTotal()), res.UpdateBytes)
	}
}
