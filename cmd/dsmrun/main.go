// Command dsmrun executes one DSM experiment end-to-end in a single
// process — the paper's three-thread configuration (one thread at the home
// node, two on the remote platform) — and prints the Eq. 1 data-sharing
// cost breakdown.
//
// Usage:
//
//	dsmrun -workload matmul -n 138 -pair SL -verify
//	dsmrun -workload lu -n 99 -pair LL -threads 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dir"
	"hetdsm/internal/dsd"
	"hetdsm/internal/ha"
	"hetdsm/internal/stats"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
	"hetdsm/internal/vmem"
)

// shardOf resolves an entry's owner from a directory stats snapshot.
func shardOf(d *dir.Stats, entry int) int32 {
	for _, m := range d.Map {
		if !m.Lock && int(m.Object) == entry {
			return m.Shard
		}
	}
	return int32(entry % d.Shards)
}

func main() {
	var (
		workload  = flag.String("workload", "matmul", `workload: "matmul", "lu", "jacobi" or "transfer"`)
		n         = flag.Int("n", 99, "matrix dimension")
		pairLabel = flag.String("pair", "SL", `platform pair: "LL", "SS" or "SL"`)
		threads   = flag.Int("threads", 3, "worker thread count")
		verify    = flag.Bool("verify", true, "verify against a sequential run")
		seed      = flag.Int64("seed", 20060814, "input generator seed")
		coalesce  = flag.Bool("coalesce", true, "group consecutive elements into single tags")
		whole     = flag.Float64("whole-array", 0.5, "whole-array transfer threshold (0 disables)")
		wordDiff  = flag.Bool("word-diff", false, "compare twins word-wise instead of byte-wise")
		traceN    = flag.Int("trace", 0, "print the last N protocol events after the run (0 disables)")
		invalid   = flag.Bool("invalidate", false, "use the invalidate protocol instead of update")
		opTimeout = flag.Duration("op-timeout", 0, "bound each sync-operation attempt; expired attempts sever the connection and retry idempotently (0 disables the deadline plane)")
		statsJSON = flag.Bool("stats-json", false, "dump the Eq. 1 stats and HA counters as JSON on exit")
		metrics   = flag.String("metrics-addr", "", "serve diagnostics HTTP on host:port (/metrics /stats /trace /spans /heat /debug/pprof)")
		traceOut  = flag.String("trace-out", "", "write the protocol event ring as JSONL to this file on exit")
		spanOut   = flag.String("span-out", "", "write release-pipeline spans as JSONL to this file on exit")
		heatTop   = flag.Int("heat", 0, "print the N hottest pages of the page-heat report (0 disables)")
		shards    = flag.Int("shards", 1, "home shard count; >1 runs the multi-home sharded directory")
		migThresh = flag.Uint64("migrate-threshold", 0, "per-entry fault total that triggers heat-driven re-homing (0 disables; needs -shards > 1)")
		ckptDir   = flag.String("wal-dir", "", "directory for coordinated cluster checkpoints")
		ckptEvery = flag.Int("checkpoint-every", 0, "write a cluster checkpoint every N barrier generations (0 disables; needs -wal-dir)")
		restore   = flag.Bool("restore", false, "resume from the cluster checkpoint in -wal-dir (matmul and lu only)")
	)
	flag.Parse()

	pair, ok := apps.PairByLabel(*pairLabel)
	if !ok {
		fmt.Fprintf(os.Stderr, "dsmrun: unknown pair %q\n", *pairLabel)
		os.Exit(2)
	}
	opts := dsd.DefaultOptions()
	opts.Coalesce = *coalesce
	opts.WholeArrayThreshold = *whole
	if *wordDiff {
		opts.Diff = vmem.DiffWord
	}
	if *invalid {
		opts.Protocol = dsd.ProtocolInvalidate
	}
	opts.OpTimeout = *opTimeout
	if *opTimeout > 0 {
		// In-process clusters reconnect through the HA dial path when an
		// attempt expires; sticky locks keep the holder's mutexes across
		// the sever-and-replay.
		opts.StickyLocks = true
	}
	kit := telemetry.NewKit(*metrics, *traceOut, *spanOut)
	var tlog *trace.Log
	if *traceN > 0 {
		tlog = trace.NewLog(*traceN)
		kit.SetTraceLog(tlog)
	}
	opts.Trace = kit.TraceLog()
	if opts.Trace == nil {
		opts.Trace = tlog
	}
	opts.Metrics = kit.Registry()
	opts.Spans = kit.Spans()

	res, err := apps.Run(apps.Config{
		Workload:         *workload,
		N:                *n,
		Pair:             pair,
		Threads:          *threads,
		Opts:             opts,
		Verify:           *verify,
		Seed:             *seed,
		Shards:           *shards,
		MigrateThreshold: *migThresh,
		CheckpointDir:    *ckptDir,
		CheckpointEvery:  *ckptEvery,
		Restore:          *restore,
		// Point the diagnostics endpoint at the live cluster: /stats
		// re-reads the breakdowns per request; /heat is a best-effort
		// snapshot of the per-page counters.
		OnCluster: func(home *dsd.Home, threads []*dsd.Thread) {
			statsFn := func() map[string]any {
				var agg stats.Breakdown
				agg.Merge(home.Stats())
				for _, th := range threads {
					agg.Merge(th.Stats())
				}
				return agg.Map()
			}
			heatFn := func() any {
				var heat vmem.HeatReport
				for _, th := range threads {
					heat.Merge(th.Heat())
				}
				return heat
			}
			if err := kit.Serve(statsFn, heatFn); err != nil {
				fmt.Fprintln(os.Stderr, "dsmrun: telemetry:", err)
				os.Exit(1)
			}
		},
		// Sharded runs expose the same live view plus the directory: the
		// shard map, ownership counters and heat leaders ride along under
		// the "dir" key so /stats shows re-homings as they happen.
		OnShards: func(cl *dir.Cluster, threads []*dsd.Thread) {
			statsFn := func() map[string]any {
				var agg stats.Breakdown
				for i := 0; i < cl.Shards(); i++ {
					agg.Merge(cl.Home(i).Stats())
				}
				for _, th := range threads {
					agg.Merge(th.Stats())
				}
				doc := agg.Map()
				doc["dir"] = cl.Stats()
				return doc
			}
			heatFn := func() any {
				var heat vmem.HeatReport
				for _, th := range threads {
					heat.Merge(th.Heat())
				}
				return heat
			}
			if err := kit.Serve(statsFn, heatFn); err != nil {
				fmt.Fprintln(os.Stderr, "dsmrun: telemetry:", err)
				os.Exit(1)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}

	fmt.Printf("workload   %s  N=%d  pair=%s (%s home, %s remote)  threads=%d\n",
		*workload, *n, pair.Label, pair.Home, pair.Remote, *threads)
	fmt.Printf("wall time  %v\n", res.Wall)
	if *verify {
		fmt.Printf("verified   %v (matches sequential run exactly)\n", res.Verified)
	}
	fmt.Printf("updates    %d bytes crossed the DSD; %d software page faults\n",
		res.UpdateBytes, res.PageFaults)
	fmt.Println()
	fmt.Println("Cshare breakdown (Eq. 1), cluster-wide:")
	total := res.AggTotal()
	for p := stats.Phase(0); p < stats.NumPhases; p++ {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(res.Agg[p]) / float64(total)
		}
		fmt.Printf("  t_%-7s %12v  %5.1f%%\n", p, res.Agg[p], pct)
	}
	fmt.Printf("  %-9s %12v\n", "Cshare", total)
	fmt.Println()
	if d := res.Dir; d != nil {
		fmt.Printf("sharded directory: %d shards, %d entry re-homings, %d lock moves, %d forwards (%d stale-cache corrections)\n",
			d.Shards, d.Migrations, d.LockMigrations, d.Forwards, d.StaleCacheHits)
		for _, ld := range d.HeatLeaders {
			fmt.Printf("  entry %3d  owner=shard%d  faults=%-6d leader=rank%d\n",
				ld.Entry, shardOf(d, ld.Entry), ld.Faults, ld.Rank)
		}
	}
	fmt.Printf("home-side conversion (the paper's t_conv): %v\n", res.Home[stats.Conv])
	fmt.Println("per-platform release-side work:")
	for name, bd := range res.ByPlatform {
		fmt.Printf("  %-16s index=%v tag=%v pack=%v\n",
			name, bd[stats.Index], bd[stats.Tag], bd[stats.Pack])
	}
	if tlog != nil {
		fmt.Printf("\nlast %d protocol events (%d recorded, %d dropped by the ring):\n",
			tlog.Len(), tlog.Total(), tlog.Dropped())
		if err := tlog.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
		}
	}
	if *heatTop > 0 {
		fmt.Printf("\npage heat (top %d of %d active pages, %d faults, %d twins, %d diff bytes):\n",
			*heatTop, len(res.Heat.Pages), res.Heat.TotalFaults, res.Heat.TwinsMade, res.Heat.TotalDiffBytes)
		for _, p := range res.Heat.Hot(*heatTop) {
			suspect := ""
			if p.FalseSharingSuspect {
				suspect = "  FALSE-SHARING?"
			}
			fmt.Printf("  page %4d  faults=%-5d runs=%-6d bytes=%-8d%s\n",
				p.Page, p.Faults, p.DiffRuns, p.DiffBytes, suspect)
		}
	}

	if *statsJSON {
		phases := func(a [stats.NumPhases]time.Duration) map[string]float64 {
			m := make(map[string]float64, stats.NumPhases)
			for p := stats.Phase(0); p < stats.NumPhases; p++ {
				m[p.String()] = a[p].Seconds()
			}
			return m
		}
		byPlat := make(map[string]map[string]float64, len(res.ByPlatform))
		for name, bd := range res.ByPlatform {
			byPlat[name] = phases(bd)
		}
		doc := map[string]any{
			"workload":     *workload,
			"n":            *n,
			"pair":         pair.Label,
			"threads":      *threads,
			"wall_seconds": res.Wall.Seconds(),
			"verified":     res.Verified,
			"update_bytes": res.UpdateBytes,
			"page_faults":  res.PageFaults,
			"stats": map[string]any{
				"cshare_seconds": res.AggTotal().Seconds(),
				"agg":            phases(res.Agg),
				"home":           phases(res.Home),
				"by_platform":    byPlat,
			},
			// dsmrun is single-process with no standby; the counters are
			// present (and zero) so consumers see one schema across both
			// commands.
			"ha": (&ha.Counters{}).Map(),
			"dir": func() any {
				if res.Dir == nil {
					return nil
				}
				return res.Dir
			}(),
			"heat": map[string]any{
				"total_faults":     res.Heat.TotalFaults,
				"total_diff_bytes": res.Heat.TotalDiffBytes,
				"twins_made":       res.Heat.TwinsMade,
				"hot":              res.Heat.Hot(10),
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
	}
	if err := kit.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun: telemetry:", err)
		os.Exit(1)
	}
}
