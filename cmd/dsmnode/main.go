// Command dsmnode runs one node of a genuinely distributed cluster over
// TCP: the home node (master copy plus its own worker thread 0), a remote
// worker thread, or a hot standby that takes over if the home dies.
//
// A two-machine session reproducing the paper's deployment:
//
//	# home machine (plays the Solaris box)
//	dsmnode -role home -listen :7000 -platform solaris-sparc \
//	        -workload matmul -n 99 -threads 3
//
//	# worker machine (plays the Linux box), twice:
//	dsmnode -role worker -home host:7000 -rank 1 -platform linux-x86 \
//	        -workload matmul -n 99 -threads 3
//	dsmnode -role worker -home host:7000 -rank 2 -platform linux-x86 \
//	        -workload matmul -n 99 -threads 3
//
// The same session with fault tolerance: a standby replicates the home and
// promotes itself when heartbeats stop, and workers fail over to it.
//
//	# standby machine: replication stream on :7002, serves on :7001 if
//	# the home (probed at host:7000) dies
//	dsmnode -role backup -listen :7001 -replica-listen :7002 -home host:7000 \
//	        -platform linux-x86 -workload matmul -n 99 -threads 3 \
//	        -heartbeat 50ms -failover-timeout 250ms
//
//	# home, streaming every release to the standby; no home-resident
//	# thread, so a home crash loses only the master image (which the
//	# standby holds), never a worker
//	dsmnode -role home -listen :7000 -backup standbyhost:7002 \
//	        -local-thread=false ...
//
//	# workers (ranks 0..threads-1) name the standby as their candidate
//	dsmnode -role worker -rank 0 -home host:7000 -standby standbyhost:7001 ...
//
// A home started with -wal-dir appends every committed release to a
// write-ahead log before acknowledging it; if the directory already holds
// state (the process was kill -9ed), the home restarts from the snapshot
// plus log tail at a bumped fencing epoch and workers replay idempotently.
// Run such a home with -local-thread=false, since a worker living in the
// home process cannot be resurrected:
//
//	dsmnode -role home -listen :7000 -wal-dir /var/tmp/dsm-wal \
//	        -local-thread=false ...
//
// The home prints the Eq. 1 breakdown when every thread has joined;
// -stats-json additionally dumps the breakdown and the HA counters as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"hetdsm/internal/apps"
	"hetdsm/internal/dir"
	"hetdsm/internal/dsd"
	"hetdsm/internal/flight"
	"hetdsm/internal/ha"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/telemetry"
	"hetdsm/internal/transport"
	"hetdsm/internal/wal"
)

func main() {
	var (
		role      = flag.String("role", "", `"home", "worker" or "backup"`)
		listen    = flag.String("listen", ":7000", "home: listen address; backup: address served after promotion")
		homeAddr  = flag.String("home", "", "worker/backup: home address host:port")
		rank      = flag.Int("rank", 0, "worker: thread rank")
		platName  = flag.String("platform", "linux-x86", "virtual platform name")
		workload  = flag.String("workload", "matmul", `"matmul", "lu" or "jacobi"`)
		n         = flag.Int("n", 99, "matrix dimension")
		threads   = flag.Int("threads", 3, "total worker thread count")
		seed      = flag.Int64("seed", 20060814, "input generator seed")
		backup    = flag.String("backup", "", "home: standby's replication address host:port")
		localTh   = flag.Bool("local-thread", true, "home: run thread 0 in this process (disable for HA so a home crash loses no worker)")
		standby   = flag.String("standby", "", "worker: standby's serving address, dialed if the home dies")
		replicaL  = flag.String("replica-listen", ":7002", "backup: replication stream listen address")
		heartbeat = flag.Duration("heartbeat", 50*time.Millisecond, "backup: heartbeat probe interval")
		failover  = flag.Duration("failover-timeout", 0, "backup: suspicion timeout (default 4 heartbeats)")
		statsJSON = flag.Bool("stats-json", false, "dump Eq. 1 stats and HA counters as JSON on exit")
		walDir    = flag.String("wal-dir", "", "home: write-ahead log directory; if it holds prior state the home restarts from it")
		shards    = flag.Int("shards", 1, "home: shard count; >1 serves a multi-home sharded directory gateway on -listen")
		migThresh = flag.Uint64("migrate-threshold", 0, "home: per-entry fault total that triggers heat-driven re-homing (0 disables; needs -shards > 1)")
		opTimeout = flag.Duration("op-timeout", 0, "bound each sync-operation attempt; expired attempts sever the connection and retry idempotently (0 disables the deadline plane)")
		metrics   = flag.String("metrics-addr", "", "serve diagnostics HTTP on host:port (/metrics /stats /trace /spans /heat /debug/pprof)")
		traceOut  = flag.String("trace-out", "", "write the protocol event ring as JSONL to this file on exit")
		spanOut   = flag.String("span-out", "", "write release-pipeline spans as JSONL to this file on exit")
	)
	flag.Parse()

	plat := platform.ByName(*platName)
	if plat == nil {
		fail(fmt.Errorf("unknown platform %q", *platName))
	}
	gthv, body, err := workloadFor(*workload, *n, *threads, *seed)
	if err != nil {
		fail(err)
	}

	opTimeoutFlag = *opTimeout
	kit := telemetry.NewKit(*metrics, *traceOut, *spanOut)
	// Black-box flight recorder: dumped to stderr on fencing, WAL
	// crash-recovery, or SIGQUIT (which then re-raises for the usual core).
	flightRec = flight.New(4096)
	flightRec.OnTrip(func(reason string, events []flight.Event) {
		_ = flight.Format(os.Stderr, reason, events)
	})
	flight.Register(flightRec)
	flight.InstallSIGQUIT(os.Stderr)
	switch *role {
	case "home":
		if *shards > 1 {
			if *backup != "" {
				fail(fmt.Errorf("-backup is incompatible with -shards > 1; per-shard durability uses -wal-dir"))
			}
			runShardedHome(*listen, *walDir, *shards, *migThresh, plat, gthv, body, *threads, *localTh, *statsJSON, kit)
			return
		}
		runHome(*listen, *backup, *walDir, plat, gthv, body, *threads, *localTh, *statsJSON, kit)
	case "worker":
		runWorker(*homeAddr, *standby, plat, gthv, body, int32(*rank), *statsJSON, kit)
	case "backup":
		runBackup(*listen, *replicaL, *homeAddr, plat, gthv, *threads, *heartbeat, *failover, *statsJSON, kit)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// flightRec is the process-wide black-box recorder, built in main before
// any role runs.
var flightRec *flight.Recorder

// opTimeoutFlag is the -op-timeout value, applied by nodeOptions.
var opTimeoutFlag time.Duration

// nodeOptions is DefaultOptions with the kit's telemetry sinks attached.
func nodeOptions(kit *telemetry.Kit) dsd.Options {
	opts := dsd.DefaultOptions()
	opts.Metrics = kit.Registry()
	opts.Spans = kit.Spans()
	opts.Flight = flightRec
	opts.OpTimeout = opTimeoutFlag
	if t := kit.TraceLog(); t != nil {
		opts.Trace = t
	}
	return opts
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dsmnode:", err)
	os.Exit(1)
}

// workloadFor resolves the GThV shape and per-thread body.
func workloadFor(workload string, n, threads int, seed int64) (tag.Struct, func(*dsd.Thread, int) error, error) {
	switch workload {
	case "matmul":
		return apps.MatMulGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.MatMulThread(th, rank, threads, n, seed, seed+1)
		}, nil
	case "lu":
		return apps.LUGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.LUThread(th, rank, threads, n, seed)
		}, nil
	case "jacobi":
		return apps.JacobiGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.JacobiThread(th, rank, threads, n, 10, seed)
		}, nil
	default:
		return tag.Struct{}, nil, fmt.Errorf("unknown workload %q", workload)
	}
}

// dumpJSON writes one stats document to stdout.
func dumpJSON(doc map[string]any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
}

func runHome(listen, backupAddr, walDir string, plat *platform.Platform, gthv tag.Struct, body func(*dsd.Thread, int) error, threads int, localThread, statsJSON bool, kit *telemetry.Kit) {
	opts := nodeOptions(kit)
	counters := &ha.Counters{}
	counters.Register(kit.Registry())
	if backupAddr != "" || walDir != "" {
		// Replicated and durable homes serve HA clients, whose
		// disconnects are transient by design.
		opts.StickyLocks = true
	}
	var wlog *wal.Log
	var home *dsd.Home
	var err error
	if walDir != "" {
		wlog, err = wal.Open(wal.Options{Dir: walDir, GThV: gthv, Metrics: kit.Registry(),
			Spans: kit.Spans(), Node: "wal", Flight: flightRec})
		if err != nil {
			fail(err)
		}
		defer wlog.Close()
	}
	if wlog != nil && wlog.Ready() {
		// Crash restart: replay snapshot + log tail and fence the old
		// incarnation with the bumped epoch.
		home, err = wlog.RecoverHome(plat, opts)
		if err != nil {
			fail(fmt.Errorf("recovering from WAL %s: %w", walDir, err))
		}
		fmt.Printf("home: recovered from WAL %s at epoch %d (%d records replayed)\n",
			walDir, wlog.Epoch(), wlog.Replayed())
	} else {
		if wlog != nil {
			opts.Epoch = wlog.Epoch()
		}
		home, err = dsd.NewHome(gthv, plat, threads, opts)
		if err != nil {
			fail(err)
		}
	}
	if wlog != nil {
		if err := home.StartReplication(wlog); err != nil {
			fail(err)
		}
		fmt.Printf("home: write-ahead logging to %s (epoch %d)\n", walDir, wlog.Epoch())
	}
	var nw transport.TCP
	if backupAddr != "" {
		// Tolerate the standby coming up a moment after us.
		var conn transport.Conn
		deadline := time.Now().Add(10 * time.Second)
		for {
			conn, err = nw.Dial(backupAddr)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			fail(fmt.Errorf("dialing standby %s: %w", backupAddr, err))
		}
		repl := ha.NewReplicator(conn, counters)
		repl.Spans = kit.Spans()
		repl.Node = "replicator"
		defer repl.Close()
		if err := home.StartReplication(repl); err != nil {
			fail(err)
		}
		// The stall ladder: replication is synchronous backpressure, so a
		// standby that is alive but not consuming (full socket buffer, dead
		// NAT entry, wedged reader) would wedge every release at the home.
		// The detector watches the replicator's send-progress watermarks; a
		// frozen backlog is declared stalled, the stream is aborted, the
		// in-flight Flush unblocks, and the home degrades to unreplicated —
		// the same fate as a dead standby, reached long before the TCP
		// stack would notice.
		stall := ha.NewStallDetector(repl, backupAddr, time.Second, 10*time.Second)
		stall.Counters = counters
		stall.Trace = kit.TraceLog()
		stall.OnStall = func(addr string, reason error) {
			fmt.Fprintf(os.Stderr, "home: standby %s stalled (%v); degrading to unreplicated\n", addr, reason)
			repl.Abort(reason)
		}
		stall.Start()
		defer stall.Stop()
		fmt.Printf("home: replicating every release to %s\n", backupAddr)
	}
	l, err := nw.Listen(listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("home: serving on %s (%s), waiting for %d threads\n", l.Addr(), plat, threads)
	go home.Serve(l)

	// By default the home machine contributes thread 0, the paper's
	// non-migrated thread. An HA deployment disables this: a thread living
	// in the home process dies with it, and no standby can resurrect a
	// worker, only the master image.
	threadStats := map[string]any{"home": home.Stats().Map()}
	if localThread {
		th, err := home.LocalThread(0, plat, opts)
		if err != nil {
			fail(err)
		}
		serveDiagnostics(kit, home, th, wlog)
		errCh := make(chan error, 1)
		go func() { errCh <- body(th, 0) }()

		home.Wait()
		if err := <-errCh; err != nil {
			fail(err)
		}
		fmt.Println("thread-0 breakdown: ", th.Stats())
		threadStats["thread0"] = th.Stats().Map()
	} else {
		serveDiagnostics(kit, home, nil, wlog)
		home.Wait()
	}
	fmt.Println("home: all threads joined")
	fmt.Println("home-side breakdown:", home.Stats())
	fmt.Printf("home-side t_conv: %v over %d update bytes\n",
		home.Stats().Phase(stats.Conv), home.Stats().Bytes(stats.Conv))
	if statsJSON {
		threadStats["home"] = home.Stats().Map()
		dumpJSON(map[string]any{
			"role":  "home",
			"stats": threadStats,
			"ha":    counters.Map(),
		})
	}
	if err := kit.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dsmnode: telemetry:", err)
	}
	home.Close()
}

// runShardedHome serves a multi-home sharded directory behind one gateway
// address: remote workers dial -listen exactly as they would a single home
// and talk to a per-connection proxy, while N shard homes (each owning its
// directory slice) live in this process. With -wal-dir every shard logs to
// wal-dir/shard<i> under its own fencing epoch; with -migrate-threshold the
// background planner re-homes hot entries while the workload runs. /stats
// carries the shard map and heat leaders under "dir", and the dsm_dir_*
// counters land in /metrics via the shared registry.
func runShardedHome(listen, walDir string, shards int, migThresh uint64, plat *platform.Platform, gthv tag.Struct, body func(*dsd.Thread, int) error, threads int, localThread, statsJSON bool, kit *telemetry.Kit) {
	opts := nodeOptions(kit)
	// Gateway proxies reconnect to shards across transient drops; treat
	// their disconnects as transient like the HA clients'.
	opts.StickyLocks = true
	cl, err := dir.NewCluster(gthv, plat, threads, dir.Config{
		Shards:           shards,
		MigrateThreshold: migThresh,
		Opts:             opts,
		WALDir:           walDir,
	})
	if err != nil {
		fail(err)
	}
	defer cl.Close()
	var nw transport.TCP
	l, err := nw.Listen(listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("home: sharded directory on %s (%s), %d shards, waiting for %d threads\n",
		l.Addr(), plat, shards, threads)
	if walDir != "" {
		fmt.Printf("home: per-shard write-ahead logs under %s/shard<i>\n", walDir)
	}
	go cl.ServeGateway(l)
	if migThresh > 0 {
		cl.StartMigrator(2 * time.Millisecond)
		fmt.Printf("home: heat-driven migration armed at %d faults/entry\n", migThresh)
	}

	var th *dsd.Thread
	if localThread {
		th, err = cl.NewThread(0, plat, opts)
		if err != nil {
			fail(err)
		}
	}
	statsFn := func() map[string]any {
		var agg stats.Breakdown
		doc := map[string]any{}
		fenced := 0
		for i := 0; i < cl.Shards(); i++ {
			h := cl.Home(i)
			agg.Merge(h.Stats())
			if h.Fenced() {
				fenced++
			}
			doc[fmt.Sprintf("shard%d", i)] = map[string]any{
				"stats":    h.Stats().Map(),
				"epoch":    h.Epoch(),
				"fenced":   h.Fenced(),
				"overload": overloadDoc(h, nil),
			}
		}
		if th != nil {
			agg.Merge(th.Stats())
			doc["thread0"] = th.Stats().Map()
		}
		doc["agg"] = agg.Map()
		ds := cl.Stats()
		doc["dir"] = ds
		// Merged cluster view: one section with the whole deployment's
		// health — aggregated Eq. 1 breakdown, the dsm_dir_* counter
		// totals, shard epochs/fencing, and the heat leaderboard — so an
		// operator reads cluster state without walking per-shard sections.
		doc["cluster"] = map[string]any{
			"shards":           ds.Shards,
			"shard_epochs":     ds.ShardEpochs,
			"fenced_shards":    fenced,
			"breakdown":        agg.Map(),
			"migrations":       ds.Migrations,
			"lock_migrations":  ds.LockMigrations,
			"forwards":         ds.Forwards,
			"stale_cache_hits": ds.StaleCacheHits,
			"sync_rounds":      ds.SyncRounds,
			"heat_leaders":     ds.HeatLeaders,
		}
		return doc
	}
	var heatFn func() any
	if th != nil {
		heatFn = func() any { return th.Heat() }
	}
	if err := kit.Serve(statsFn, heatFn); err != nil {
		fail(err)
	}

	threadStats := map[string]any{}
	if th != nil {
		errCh := make(chan error, 1)
		go func() { errCh <- body(th, 0) }()
		cl.Wait()
		if err := <-errCh; err != nil {
			fail(err)
		}
		fmt.Println("thread-0 breakdown: ", th.Stats())
		threadStats["thread0"] = th.Stats().Map()
	} else {
		cl.Wait()
	}
	cl.StopMigrator()
	if migThresh > 0 {
		if _, err := cl.PumpMigrations(); err != nil {
			fail(err)
		}
	}
	fmt.Println("home: all threads joined")
	var homeSide stats.Breakdown
	for i := 0; i < cl.Shards(); i++ {
		hs := cl.Home(i).Stats()
		homeSide.Merge(hs)
		threadStats[fmt.Sprintf("shard%d", i)] = hs.Map()
	}
	fmt.Println("home-side breakdown (all shards):", &homeSide)
	ds := cl.Stats()
	fmt.Printf("directory: %d entry re-homings, %d lock moves, %d forwards (%d stale-cache corrections)\n",
		ds.Migrations, ds.LockMigrations, ds.Forwards, ds.StaleCacheHits)
	if statsJSON {
		dumpJSON(map[string]any{
			"role":  "home",
			"stats": threadStats,
			"ha":    (&ha.Counters{}).Map(),
			"dir":   ds,
		})
	}
	if err := kit.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dsmnode: telemetry:", err)
	}
}

// overloadDoc renders a home's deadline-plane health for /stats: per-peer
// bounded-queue depth, the oldest unacked frame's age, shed counts, and the
// budget-bounded waits that expired. Empty queues when the plane is off.
func overloadDoc(home *dsd.Home, th *dsd.Thread) map[string]any {
	peers := []map[string]any{}
	for _, q := range home.QueueStats() {
		peers = append(peers, map[string]any{
			"rank":              q.Rank,
			"depth":             q.Depth,
			"oldest_unacked_ms": q.OldestAge.Milliseconds(),
			"enqueued":          q.Enqueued,
			"sent":              q.Sent,
			"shed":              q.Shed,
		})
	}
	doc := map[string]any{
		"queues":            peers,
		"deadline_exceeded": home.DeadlineExceeded(),
	}
	if th != nil {
		doc["thread0_deadline_exceeded"] = th.DeadlineExceeded()
	}
	return doc
}

// serveDiagnostics points the kit's HTTP endpoint at a home and an
// optional co-resident thread. The stats document is live: every request
// re-reads the breakdowns. The heat report is the thread's best-effort
// snapshot (heat counters are written by the thread itself).
func serveDiagnostics(kit *telemetry.Kit, home *dsd.Home, th *dsd.Thread, wlog *wal.Log) {
	statsFn := func() map[string]any {
		doc := map[string]any{"home": home.Stats().Map()}
		if th != nil {
			doc["thread0"] = th.Stats().Map()
		}
		doc["epoch"] = home.Epoch()
		doc["fenced"] = home.Fenced()
		applied, released := home.Watermarks()
		doc["watermarks"] = map[string]any{"applied": applied, "released": released}
		doc["overload"] = overloadDoc(home, th)
		if wlog != nil {
			doc["wal"] = wlog.Stats()
		}
		return doc
	}
	var heatFn func() any
	if th != nil {
		heatFn = func() any { return th.Heat() }
	}
	if err := kit.Serve(statsFn, heatFn); err != nil {
		fail(err)
	}
}

func runWorker(homeAddr, standbyAddr string, plat *platform.Platform, gthv tag.Struct, body func(*dsd.Thread, int) error, rank int32, statsJSON bool, kit *telemetry.Kit) {
	if homeAddr == "" {
		fail(fmt.Errorf("worker needs -home host:port"))
	}
	opts := nodeOptions(kit)
	var nw transport.TCP
	var th *dsd.Thread
	var err error
	if standbyAddr != "" {
		th, err = dsd.DialHA(nw, []string{homeAddr, standbyAddr}, plat, rank, gthv, opts)
	} else {
		th, err = dsd.Dial(nw, homeAddr, plat, rank, gthv, opts)
	}
	if err != nil {
		fail(err)
	}
	defer th.Close()
	kit.Registry().GaugeFunc("dsm_ha_reconnects",
		"client connections re-established after a failure",
		func() float64 { return float64(th.Reconnects()) })
	statsFn := func() map[string]any {
		return map[string]any{
			"thread":            th.Stats().Map(),
			"deadline_exceeded": th.DeadlineExceeded(),
			"reconnects":        th.Reconnects(),
		}
	}
	if err := kit.Serve(statsFn, func() any { return th.Heat() }); err != nil {
		fail(err)
	}
	defer func() {
		if err := kit.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dsmnode: telemetry:", err)
		}
	}()
	fmt.Printf("worker: rank %d (%s) connected to %s\n", rank, plat, homeAddr)
	if err := body(th, int(rank)); err != nil {
		fail(err)
	}
	fmt.Println("worker: done;", th.Stats())
	if n := th.Reconnects(); n > 0 {
		fmt.Printf("worker: survived %d reconnects\n", n)
	}
	if statsJSON {
		counters := &ha.Counters{}
		counters.Reconnects.Add(th.Reconnects())
		dumpJSON(map[string]any{
			"role":  "worker",
			"rank":  rank,
			"stats": map[string]any{"thread": th.Stats().Map()},
			"ha":    counters.Map(),
		})
	}
}

func runBackup(listen, replicaListen, homeAddr string, plat *platform.Platform, gthv tag.Struct, threads int, heartbeat, failover time.Duration, statsJSON bool, kit *telemetry.Kit) {
	if homeAddr == "" {
		fail(fmt.Errorf("backup needs -home host:port to probe"))
	}
	var nw transport.TCP
	counters := &ha.Counters{}
	counters.Register(kit.Registry())
	b := ha.NewBackup(gthv)
	standby, err := ha.NewStandby(nw, b, ha.StandbyConfig{
		PrimaryAddr:       homeAddr,
		ReplicaAddr:       replicaListen,
		ServeAddr:         listen,
		Platform:          plat,
		Opts:              nodeOptions(kit),
		HeartbeatInterval: heartbeat,
		FailoverTimeout:   failover,
	})
	if err != nil {
		fail(err)
	}
	standby.Counters = counters
	var promoted atomic.Pointer[dsd.Home]
	statsFn := func() map[string]any {
		if h := promoted.Load(); h != nil {
			return map[string]any{"home": h.Stats().Map()}
		}
		return map[string]any{"home": map[string]any{}}
	}
	if err := kit.Serve(statsFn, nil); err != nil {
		fail(err)
	}
	// The replication listener is live as soon as NewStandby returns, so
	// the home may be started now — but don't arm the failure detector
	// until the home is actually up, or its absence during cluster
	// bring-up reads as a crash and promotes an empty backup.
	fmt.Printf("standby: replicating on %s, waiting for home %s\n", replicaListen, homeAddr)
	for {
		c, err := nw.Dial(homeAddr)
		if err == nil {
			c.Close()
			break
		}
		time.Sleep(heartbeat)
	}
	standby.Start()
	defer standby.Stop()
	fmt.Printf("standby: probing %s every %v, ready to serve on %s\n",
		homeAddr, heartbeat, listen)

	<-standby.Promoted()
	home, err := standby.Home()
	if err != nil {
		fail(fmt.Errorf("failover: %w", err))
	}
	promoted.Store(home)
	fmt.Printf("standby: home suspected dead; promoted, serving on %s\n", listen)
	home.Wait()
	fmt.Println("standby: all threads joined")
	fmt.Println("promoted-home breakdown:", home.Stats())
	if statsJSON {
		dumpJSON(map[string]any{
			"role":  "backup",
			"stats": map[string]any{"home": home.Stats().Map()},
			"ha":    counters.Map(),
		})
	}
	if err := kit.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dsmnode: telemetry:", err)
	}
	home.Close()
}
