// Command dsmnode runs one node of a genuinely distributed cluster over
// TCP: either the home node (master copy plus its own worker thread 0) or a
// remote worker thread.
//
// A two-machine session reproducing the paper's deployment:
//
//	# home machine (plays the Solaris box)
//	dsmnode -role home -listen :7000 -platform solaris-sparc \
//	        -workload matmul -n 99 -threads 3
//
//	# worker machine (plays the Linux box), twice:
//	dsmnode -role worker -home host:7000 -rank 1 -platform linux-x86 \
//	        -workload matmul -n 99 -threads 3
//	dsmnode -role worker -home host:7000 -rank 2 -platform linux-x86 \
//	        -workload matmul -n 99 -threads 3
//
// The home prints the Eq. 1 breakdown when every thread has joined.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetdsm/internal/apps"
	"hetdsm/internal/dsd"
	"hetdsm/internal/platform"
	"hetdsm/internal/stats"
	"hetdsm/internal/tag"
	"hetdsm/internal/transport"
)

func main() {
	var (
		role     = flag.String("role", "", `"home" or "worker"`)
		listen   = flag.String("listen", ":7000", "home: listen address")
		homeAddr = flag.String("home", "", "worker: home address host:port")
		rank     = flag.Int("rank", 0, "worker: thread rank")
		platName = flag.String("platform", "linux-x86", "virtual platform name")
		workload = flag.String("workload", "matmul", `"matmul", "lu" or "jacobi"`)
		n        = flag.Int("n", 99, "matrix dimension")
		threads  = flag.Int("threads", 3, "total worker thread count")
		seed     = flag.Int64("seed", 20060814, "input generator seed")
	)
	flag.Parse()

	plat := platform.ByName(*platName)
	if plat == nil {
		fail(fmt.Errorf("unknown platform %q", *platName))
	}
	gthv, body, err := workloadFor(*workload, *n, *threads, *seed)
	if err != nil {
		fail(err)
	}

	switch *role {
	case "home":
		runHome(*listen, plat, gthv, body, *threads)
	case "worker":
		runWorker(*homeAddr, plat, gthv, body, int32(*rank))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dsmnode:", err)
	os.Exit(1)
}

// workloadFor resolves the GThV shape and per-thread body.
func workloadFor(workload string, n, threads int, seed int64) (tag.Struct, func(*dsd.Thread, int) error, error) {
	switch workload {
	case "matmul":
		return apps.MatMulGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.MatMulThread(th, rank, threads, n, seed, seed+1)
		}, nil
	case "lu":
		return apps.LUGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.LUThread(th, rank, threads, n, seed)
		}, nil
	case "jacobi":
		return apps.JacobiGThV(n), func(th *dsd.Thread, rank int) error {
			return apps.JacobiThread(th, rank, threads, n, 10, seed)
		}, nil
	default:
		return tag.Struct{}, nil, fmt.Errorf("unknown workload %q", workload)
	}
}

func runHome(listen string, plat *platform.Platform, gthv tag.Struct, body func(*dsd.Thread, int) error, threads int) {
	home, err := dsd.NewHome(gthv, plat, threads, dsd.DefaultOptions())
	if err != nil {
		fail(err)
	}
	var nw transport.TCP
	l, err := nw.Listen(listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("home: serving on %s (%s), waiting for %d threads\n", l.Addr(), plat, threads)
	go home.Serve(l)

	// The home machine contributes thread 0, the paper's non-migrated
	// thread.
	th, err := home.LocalThread(0, plat, dsd.DefaultOptions())
	if err != nil {
		fail(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- body(th, 0) }()

	home.Wait()
	if err := <-errCh; err != nil {
		fail(err)
	}
	fmt.Println("home: all threads joined")
	fmt.Println("home-side breakdown:", home.Stats())
	fmt.Println("thread-0 breakdown: ", th.Stats())
	fmt.Printf("home-side t_conv: %v over %d update bytes\n",
		home.Stats().Phase(stats.Conv), home.Stats().Bytes(stats.Conv))
	home.Close()
}

func runWorker(homeAddr string, plat *platform.Platform, gthv tag.Struct, body func(*dsd.Thread, int) error, rank int32) {
	if homeAddr == "" {
		fail(fmt.Errorf("worker needs -home host:port"))
	}
	var nw transport.TCP
	th, err := dsd.Dial(nw, homeAddr, plat, rank, gthv, dsd.DefaultOptions())
	if err != nil {
		fail(err)
	}
	defer th.Close()
	fmt.Printf("worker: rank %d (%s) connected to %s\n", rank, plat, homeAddr)
	if err := body(th, int(rank)); err != nil {
		fail(err)
	}
	fmt.Println("worker: done;", th.Stats())
}
