// Command dsmsim sweeps the deterministic cluster simulator across seeds,
// fault profiles, and platform mixes, validating every run against the
// release-consistency checker. A violation prints its reproducer (seed +
// fault schedule + minimized event trace) and fails the sweep; -out saves
// the full reports as artifacts for CI upload.
//
// Usage:
//
//	dsmsim -seeds 64 -profile all -mix all        # CI sweep
//	dsmsim -replay 41 -profile partition -mix Lsl  # reproduce one failure
//	dsmsim -seeds 8 -negative                      # oracle self-test
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"hetdsm/internal/sim"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 8, "number of seeds to sweep (seed 0..N-1)")
		profile  = flag.String("profile", "all", "fault profile (clean|flaky|partition|failover|handoff|lostack|homecrash-restart|migrate|all)")
		mix      = flag.String("mix", "all", "platform mix (e.g. LL, SL, Lsl) or all")
		shards   = flag.Int("shards", 0, "home shard count (0 = profile default: 1, or 4 for migrate)")
		negative = flag.Bool("negative", false, "corrupt wire frames and require the checker to notice")
		replay   = flag.Int64("replay", -1, "replay one seed (with -profile/-mix) and verify byte-identical traces")
		spansOut = flag.String("spans-out", "", "with -replay: write the run's release spans as JSONL (dsmtrace -spans input)")
		out      = flag.String("out", "", "directory for violation-report artifacts")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		verbose  = flag.Bool("v", false, "print every run, not just failures")
	)
	flag.Parse()

	profiles, err := pickProfiles(*profile, *negative)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mixes, err := pickMixes(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *replay >= 0 {
		os.Exit(replayOne(*replay, profiles, mixes, *negative, *shards, *out, *spansOut))
	}

	plans := make([]sim.Plan, 0, *seeds*len(profiles)*len(mixes))
	for seed := int64(0); seed < int64(*seeds); seed++ {
		for _, p := range profiles {
			for _, m := range mixes {
				plan := sim.NewPlan(seed, p, m)
				plan.Negative = *negative
				if p.Shardable() {
					// Profiles scripting single-home fates keep their
					// default; -shards only shapes the ones that compose.
					plan.Shards = *shards
				}
				plans = append(plans, plan)
			}
		}
	}
	os.Exit(sweep(plans, *negative, *workers, *verbose, *out))
}

func pickProfiles(name string, negative bool) ([]sim.Profile, error) {
	if negative {
		// Negative mode only composes with the clean profile.
		return []sim.Profile{sim.ProfileClean}, nil
	}
	if name == "all" {
		return sim.Profiles(), nil
	}
	p := sim.Profile(name)
	if !sim.ValidProfile(p) {
		return nil, fmt.Errorf("dsmsim: unknown profile %q (want clean|flaky|partition|failover|handoff|lostack|homecrash-restart|migrate|all)", name)
	}
	return []sim.Profile{p}, nil
}

func pickMixes(name string) ([]string, error) {
	if name == "all" {
		return sim.Mixes(), nil
	}
	if len(name) < 2 {
		return nil, fmt.Errorf("dsmsim: mix %q needs at least a home and one thread letter", name)
	}
	return []string{name}, nil
}

// sweep runs every plan, bounded by the worker count, and reports the
// tally. Exit 0 only if every run matched its expectation (clean sweeps
// validate, negative sweeps are flagged).
func sweep(plans []sim.Plan, negative bool, workers int, verbose bool, out string) int {
	if workers < 1 {
		workers = 1
	}
	type outcome struct {
		res sim.Result
		bad bool
	}
	results := make([]outcome, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, plan := range plans {
		wg.Add(1)
		go func(i int, plan sim.Plan) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := sim.Run(plan)
			bad := !res.OK()
			if negative {
				// The oracle must notice the corruption; a clean result or
				// an infrastructure error is the failure here.
				bad = res.Err != nil || len(res.Violations) == 0 || res.Corrupted == 0
			}
			results[i] = outcome{res: res, bad: bad}
		}(i, plan)
	}
	wg.Wait()

	failed := 0
	for _, o := range results {
		if o.bad {
			failed++
			if negative && o.res.Err == nil && len(o.res.Violations) == 0 {
				fmt.Printf("NEGATIVE MISS: %s validated clean despite %d corrupted frames\n", o.res.Plan, o.res.Corrupted)
			} else {
				fmt.Printf("FAIL: %s\n%s", o.res.Plan, o.res.Report())
			}
			saveArtifact(out, o.res)
		} else if verbose {
			fmt.Printf("ok: %s (%d events)\n", o.res.Plan, o.res.Events)
		}
	}
	mode := "violation-free"
	if negative {
		mode = "corruption-detecting"
	}
	fmt.Printf("dsmsim: %d/%d runs %s\n", len(plans)-failed, len(plans), mode)
	if failed > 0 {
		return 1
	}
	return 0
}

// replayOne runs a single plan twice and verifies the byte-identical
// canonical-trace guarantee, printing the full report.
func replayOne(seed int64, profiles []sim.Profile, mixes []string, negative bool, shards int, out, spansOut string) int {
	plan := sim.NewPlan(seed, profiles[0], mixes[0])
	plan.Negative = negative
	plan.Shards = shards
	a := sim.Run(plan)
	fmt.Print(a.Report())
	saveArtifact(out, a)
	if spansOut != "" {
		if err := writeSpansJSONL(spansOut, a); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: -spans-out: %v\n", err)
			return 1
		}
		fmt.Printf("spans: wrote %d to %s\n", len(a.Spans), spansOut)
	}
	b := sim.Run(plan)
	if !bytes.Equal(a.Canonical, b.Canonical) {
		fmt.Printf("REPLAY DIVERGED: second run of %s produced a different canonical trace\n", plan)
		return 1
	}
	fmt.Println("replay: byte-identical canonical trace")
	if negative {
		if a.Err != nil || len(a.Violations) == 0 {
			return 1
		}
		return 0
	}
	if !a.OK() {
		return 1
	}
	return 0
}

// saveArtifact writes the run's report and canonical trace for CI upload.
func saveArtifact(dir string, res sim.Result) {
	if dir == "" {
		return
	}
	name := fmt.Sprintf("seed%d-%s-%s", res.Plan.Seed, res.Plan.Profile, res.Plan.Mix)
	if res.Plan.Negative {
		name += "-negative"
	}
	report := res.Report() + "\n--- canonical trace ---\n" + string(res.Canonical)
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dsmsim: artifact %s: %v\n", name, err)
	}
	// The black-box flight dump rides along as its own artifact so a CI
	// failure ships the protocol-event tail even without the full report.
	if res.FlightDump != "" {
		if err := os.WriteFile(filepath.Join(dir, name+"-flight.txt"), []byte(res.FlightDump), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: flight artifact %s: %v\n", name, err)
		}
	}
}

// writeSpansJSONL exports a run's spans one JSON object per line — the
// same shape a node's /spans endpoint streams, so dsmtrace consumes both.
func writeSpansJSONL(path string, res sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for i := range res.Spans {
		if err := enc.Encode(&res.Spans[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
