// Command dsmsim sweeps the deterministic cluster simulator across seeds,
// fault profiles, and platform mixes, validating every run against the
// release-consistency checker. A violation prints its reproducer (seed +
// fault schedule + minimized event trace) and fails the sweep; -out saves
// the full reports as artifacts for CI upload.
//
// Usage:
//
//	dsmsim -seeds 64 -profile all -mix all         # CI sweep
//	dsmsim -seeds 64 -grammar all -corpus seeds.json # grammar sweep, auto-corpus
//	dsmsim -replay 41 -profile partition -mix Lsl  # reproduce one failure
//	dsmsim -seeds 8 -negative                      # oracle self-test
//
// -grammar selects a workload grammar mix: a builtin name (classic, nested,
// pointer, producer, hotcold, chaos), "all", or an inline weighted spec
// like "cs:3,nested:2,ptr-chase:1". -corpus names a regression-seed JSON
// file; any violation a clean sweep finds is appended there automatically
// so TestRegressionSeeds replays it forever.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"hetdsm/internal/sim"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 8, "number of seeds to sweep (seed 0..N-1)")
		profile  = flag.String("profile", "all", "fault profile (clean|flaky|partition|failover|handoff|lostack|homecrash-restart|migrate|stall|dribble|all)")
		mix      = flag.String("mix", "all", "platform mix (e.g. LL, SL, Lsl) or all")
		shards   = flag.Int("shards", 0, "home shard count (0 = profile default: 1, or 4 for migrate)")
		grammar  = flag.String("grammar", "classic", "workload grammar (classic|nested|pointer|producer|hotcold|chaos|all) or a weighted spec like cs:3,nested:2")
		locks    = flag.Int("locks", 0, "lock count for grammar workloads (0 = mix default)")
		corpus   = flag.String("corpus", "", "regression-seed JSON file; clean-sweep violations are appended automatically")
		negative = flag.Bool("negative", false, "corrupt wire frames and require the checker to notice")
		replay   = flag.Int64("replay", -1, "replay one seed (with -profile/-mix/-grammar) and verify byte-identical traces")
		spansOut = flag.String("spans-out", "", "with -replay: write the run's release spans as JSONL (dsmtrace -spans input)")
		out      = flag.String("out", "", "directory for violation-report artifacts")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		verbose  = flag.Bool("v", false, "print every run, not just failures")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *replay < 0 && *seeds <= 0 {
		fail(fmt.Errorf("dsmsim: -seeds %d sweeps nothing; pass a positive seed count", *seeds))
	}
	profiles, err := pickProfiles(*profile, *negative)
	if err != nil {
		fail(err)
	}
	mixes, err := pickMixes(*mix)
	if err != nil {
		fail(err)
	}
	grammars, err := pickGrammars(*grammar)
	if err != nil {
		fail(err)
	}
	if *shards > 1 {
		for _, p := range profiles {
			if *profile != "all" && !p.Shardable() {
				fail(fmt.Errorf("dsmsim: profile %s scripts a single home and does not compose with -shards %d; drop -shards or pick a shardable profile (clean|flaky|lostack|migrate|stall|dribble)", p, *shards))
			}
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}

	if *replay >= 0 {
		if *profile == "all" || *mix == "all" || *grammar == "all" {
			fail(fmt.Errorf("dsmsim: -replay reproduces one plan; name one -profile, -mix, and -grammar (got -profile %s -mix %s -grammar %s)", *profile, *mix, *grammar))
		}
		os.Exit(replayOne(*replay, profiles, mixes, grammars, *negative, *shards, *locks, *out, *spansOut))
	}

	plans := make([]sim.Plan, 0, *seeds*len(profiles)*len(mixes)*len(grammars))
	for seed := int64(0); seed < int64(*seeds); seed++ {
		for _, p := range profiles {
			for _, m := range mixes {
				for _, g := range grammars {
					plan := sim.NewPlan(seed, p, m)
					plan.Negative = *negative
					plan.Grammar = g
					plan.Locks = *locks
					if p.Shardable() {
						// Profiles scripting single-home fates keep their
						// default; -shards only shapes the ones that compose.
						plan.Shards = *shards
					}
					if err := plan.Validate(); err != nil {
						fail(fmt.Errorf("dsmsim: %w", err))
					}
					plans = append(plans, plan)
				}
			}
		}
	}
	os.Exit(sweep(plans, *negative, *workers, *verbose, *out, *corpus))
}

func pickProfiles(name string, negative bool) ([]sim.Profile, error) {
	if negative {
		// Negative mode corrupts wire frames on an otherwise-clean run; a
		// fault profile would blur whose failure the oracle is detecting.
		if name != "all" && name != string(sim.ProfileClean) {
			return nil, fmt.Errorf("dsmsim: -negative requires the clean profile, got -profile %s; drop one of the two flags", name)
		}
		return []sim.Profile{sim.ProfileClean}, nil
	}
	if name == "all" {
		return sim.Profiles(), nil
	}
	p := sim.Profile(name)
	if !sim.ValidProfile(p) {
		return nil, fmt.Errorf("dsmsim: unknown profile %q (want clean|flaky|partition|failover|handoff|lostack|homecrash-restart|migrate|stall|dribble|all)", name)
	}
	return []sim.Profile{p}, nil
}

func pickMixes(name string) ([]string, error) {
	if name == "all" {
		return sim.Mixes(), nil
	}
	if len(name) < 2 {
		return nil, fmt.Errorf("dsmsim: mix %q needs at least a home and one thread letter", name)
	}
	return []string{name}, nil
}

func pickGrammars(name string) ([]string, error) {
	if name == "all" {
		return sim.GrammarMixes(), nil
	}
	if _, err := sim.MixByName(name); err != nil {
		return nil, fmt.Errorf("dsmsim: %w", err)
	}
	return []string{name}, nil
}

// sweep runs every plan, bounded by the worker count, and reports the
// tally. Exit 0 only if every run matched its expectation (clean sweeps
// validate, negative sweeps are flagged). With corpus set, every clean-
// sweep violation is appended to the regression-seed file so the exact
// reproducer lands under TestRegressionSeeds.
func sweep(plans []sim.Plan, negative bool, workers int, verbose bool, out, corpus string) int {
	if workers < 1 {
		workers = 1
	}
	type outcome struct {
		res sim.Result
		bad bool
	}
	results := make([]outcome, len(plans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, plan := range plans {
		wg.Add(1)
		go func(i int, plan sim.Plan) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := sim.Run(plan)
			bad := !res.OK()
			if negative {
				// The oracle must notice the corruption; a clean result or
				// an infrastructure error is the failure here.
				bad = res.Err != nil || len(res.Violations) == 0 || res.Corrupted == 0
			}
			results[i] = outcome{res: res, bad: bad}
		}(i, plan)
	}
	wg.Wait()

	failed := 0
	for _, o := range results {
		if o.bad {
			failed++
			if negative && o.res.Err == nil && len(o.res.Violations) == 0 {
				fmt.Printf("NEGATIVE MISS: %s validated clean despite %d corrupted frames\n", o.res.Plan, o.res.Corrupted)
			} else {
				fmt.Printf("FAIL: %s\n%s", o.res.Plan, o.res.Report())
			}
			saveArtifact(out, o.res)
			if corpus != "" && !negative && len(o.res.Violations) > 0 {
				added, err := sim.AppendCorpus(corpus, sim.EntryForResult(o.res))
				switch {
				case err != nil:
					fmt.Fprintf(os.Stderr, "dsmsim: corpus append: %v\n", err)
				case added:
					fmt.Printf("corpus: recorded %s in %s\n", o.res.Plan, corpus)
				default:
					fmt.Printf("corpus: %s already present in %s\n", o.res.Plan, corpus)
				}
			}
		} else if verbose {
			fmt.Printf("ok: %s (%d events)\n", o.res.Plan, o.res.Events)
		}
	}
	mode := "violation-free"
	if negative {
		mode = "corruption-detecting"
	}
	fmt.Printf("dsmsim: %d/%d runs %s\n", len(plans)-failed, len(plans), mode)
	if failed > 0 {
		return 1
	}
	return 0
}

// replayOne runs a single plan twice and verifies the byte-identical
// canonical-trace guarantee, printing the full report.
func replayOne(seed int64, profiles []sim.Profile, mixes []string, grammars []string, negative bool, shards, locks int, out, spansOut string) int {
	plan := sim.NewPlan(seed, profiles[0], mixes[0])
	plan.Negative = negative
	plan.Shards = shards
	plan.Grammar = grammars[0]
	plan.Locks = locks
	if err := plan.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "dsmsim: %v\n", err)
		return 2
	}
	a := sim.Run(plan)
	fmt.Print(a.Report())
	saveArtifact(out, a)
	if spansOut != "" {
		if err := writeSpansJSONL(spansOut, a); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: -spans-out: %v\n", err)
			return 1
		}
		fmt.Printf("spans: wrote %d to %s\n", len(a.Spans), spansOut)
	}
	b := sim.Run(plan)
	if !bytes.Equal(a.Canonical, b.Canonical) {
		fmt.Printf("REPLAY DIVERGED: second run of %s produced a different canonical trace\n", plan)
		return 1
	}
	fmt.Println("replay: byte-identical canonical trace")
	if negative {
		if a.Err != nil || len(a.Violations) == 0 {
			return 1
		}
		return 0
	}
	if !a.OK() {
		return 1
	}
	return 0
}

// saveArtifact writes the run's report and canonical trace for CI upload.
func saveArtifact(dir string, res sim.Result) {
	if dir == "" {
		return
	}
	name := fmt.Sprintf("seed%d-%s-%s", res.Plan.Seed, res.Plan.Profile, res.Plan.Mix)
	if res.Plan.Grammar != "" && res.Plan.Grammar != "classic" {
		name += "-" + sanitize(res.Plan.Grammar)
	}
	if res.Plan.Negative {
		name += "-negative"
	}
	report := res.Report() + "\n--- canonical trace ---\n" + string(res.Canonical)
	if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dsmsim: artifact %s: %v\n", name, err)
	}
	// The black-box flight dump rides along as its own artifact so a CI
	// failure ships the protocol-event tail even without the full report.
	if res.FlightDump != "" {
		if err := os.WriteFile(filepath.Join(dir, name+"-flight.txt"), []byte(res.FlightDump), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dsmsim: flight artifact %s: %v\n", name, err)
		}
	}
}

// sanitize maps an inline grammar spec ("cs:3,nested:2") onto a safe
// artifact-file name fragment.
func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// writeSpansJSONL exports a run's spans one JSON object per line — the
// same shape a node's /spans endpoint streams, so dsmtrace consumes both.
func writeSpansJSONL(path string, res sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for i := range res.Spans {
		if err := enc.Encode(&res.Spans[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
