// Command dsmtrace is the cluster trace collector: it gathers release-
// pipeline spans and protocol events from running nodes (their /spans and
// /trace diagnostics endpoints) or from JSONL files (dsmsim -spans-out,
// -trace-out dumps), stitches the causal DAG of every release by trace
// context, and exports:
//
//   - a Chrome trace-event JSON file (-chrome) loadable in Perfetto or
//     chrome://tracing, one process lane per node, one thread lane per rank
//   - a text summary of the slowest releases with their critical paths
//   - a per-page fault-rate / diff-density CSV series (-series) derived
//     from the protocol-event ring
//
// Usage:
//
//	dsmtrace -nodes 127.0.0.1:9301,127.0.0.1:9302 -chrome out.json
//	dsmtrace -spans run.spans.jsonl -chrome out.json -top 5
//	dsmtrace -trace run.trace.jsonl -series pages.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hetdsm/internal/telemetry"
	"hetdsm/internal/trace"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated diagnostics addresses (host:port) to scrape /spans and /trace from")
		spansIn   = flag.String("spans", "", "comma-separated span JSONL files (offline mode; dsmsim -spans-out output)")
		traceIn   = flag.String("trace", "", "comma-separated protocol-event JSONL files (offline mode; -trace-out output)")
		chromeOut = flag.String("chrome", "", "write the stitched DAG as Chrome trace-event JSON (Perfetto-loadable)")
		seriesOut = flag.String("series", "", "write per-page fault-rate/diff-density CSV derived from protocol events")
		bucket    = flag.Duration("bucket", time.Second, "series time-bucket width")
		top       = flag.Int("top", 10, "releases to summarize, slowest first (0 = all)")
		timeout   = flag.Duration("timeout", 5*time.Second, "HTTP scrape timeout")
	)
	flag.Parse()

	if *nodes == "" && *spansIn == "" && *traceIn == "" {
		fmt.Fprintln(os.Stderr, "dsmtrace: need -nodes, -spans, or -trace (see -h)")
		os.Exit(2)
	}

	var logs [][]telemetry.Span
	var events []trace.Event
	client := &http.Client{Timeout: *timeout}
	for _, addr := range splitList(*nodes) {
		spans, err := scrapeSpans(client, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: scrape %s/spans: %v\n", addr, err)
			os.Exit(1)
		}
		logs = append(logs, spans)
		evs, err := scrapeTrace(client, addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: scrape %s/trace: %v\n", addr, err)
			os.Exit(1)
		}
		events = append(events, evs...)
	}
	for _, path := range splitList(*spansIn) {
		spans, err := readSpansFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		logs = append(logs, spans)
	}
	for _, path := range splitList(*traceIn) {
		evs, err := readTraceFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		events = append(events, evs...)
	}

	rels := telemetry.MergeTimeline(logs...)
	nspans := 0
	for _, l := range logs {
		nspans += len(l)
	}
	fmt.Printf("dsmtrace: %d releases stitched from %d sources (%d spans, %d protocol events)\n",
		len(rels), len(logs), nspans, len(events))

	if *chromeOut != "" {
		if err := writeChromeFile(*chromeOut, rels); err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: -chrome: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace: %s (load in Perfetto or chrome://tracing)\n", *chromeOut)
	}
	if len(rels) > 0 {
		summarize(os.Stdout, rels, *top)
	}
	if *seriesOut != "" {
		if len(events) == 0 {
			fmt.Fprintln(os.Stderr, "dsmtrace: -series needs protocol events (-nodes or -trace)")
			os.Exit(1)
		}
		if err := writeSeries(*seriesOut, events, *bucket); err != nil {
			fmt.Fprintf(os.Stderr, "dsmtrace: -series: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("page series: %s\n", *seriesOut)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func scrapeSpans(client *http.Client, addr string) ([]telemetry.Span, error) {
	body, err := get(client, addr, "/spans")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return decodeSpans(body)
}

func scrapeTrace(client *http.Client, addr string) ([]trace.Event, error) {
	body, err := get(client, addr, "/trace")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return decodeTrace(body)
}

func get(client *http.Client, addr, path string) (io.ReadCloser, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return resp.Body, nil
}

func readSpansFile(path string) ([]telemetry.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeSpans(f)
}

func readTraceFile(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeTrace(f)
}

func decodeSpans(r io.Reader) ([]telemetry.Span, error) {
	var out []telemetry.Span
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var s telemetry.Span
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func decodeTrace(r io.Reader) ([]trace.Event, error) {
	var out []trace.Event
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var e trace.Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

func writeChromeFile(path string, rels []telemetry.Release) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, rels); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summarize prints the slowest releases with their node sets and critical
// paths — the per-release answer to "where did the time go".
func summarize(w io.Writer, rels []telemetry.Release, top int) {
	byLatency := make([]telemetry.Release, len(rels))
	copy(byLatency, rels)
	sort.SliceStable(byLatency, func(i, j int) bool {
		return byLatency[i].Latency() > byLatency[j].Latency()
	})
	if top > 0 && len(byLatency) > top {
		byLatency = byLatency[:top]
		fmt.Fprintf(w, "slowest %d releases:\n", top)
	} else {
		fmt.Fprintln(w, "releases, slowest first:")
	}
	for _, rel := range byLatency {
		nodes := rel.Nodes()
		fmt.Fprintf(w, "  trace %016x rank %d seq %d: %v across %d nodes (%s)\n",
			rel.TraceID, rel.Rank, rel.Seq, time.Duration(rel.Latency()).Round(time.Microsecond),
			len(nodes), strings.Join(nodes, ", "))
		cp := rel.CriticalPath()
		if len(cp) == 0 {
			continue
		}
		parts := make([]string, 0, len(cp))
		for _, s := range cp {
			parts = append(parts, fmt.Sprintf("%s@%s %v", s.Stage, s.Node, time.Duration(s.Dur).Round(time.Microsecond)))
		}
		fmt.Fprintf(w, "    critical path: %s\n", strings.Join(parts, " -> "))
	}
}

// pageBucket keys the series: one page (lock/barrier index) in one time
// bucket.
type pageBucket struct {
	page   int32
	bucket int64
}

type pageStats struct {
	grants   int
	releases int
	bytes    int
}

// writeSeries derives per-page activity from the protocol-event ring:
// lock grants approximate the page fault rate (each grant precedes the
// acquirer's pull of the page) and unlock/flush bytes give the diff
// density each release shipped.
func writeSeries(path string, events []trace.Event, bucket time.Duration) error {
	if bucket <= 0 {
		bucket = time.Second
	}
	var t0 time.Time
	for _, e := range events {
		if t0.IsZero() || e.At.Before(t0) {
			t0 = e.At
		}
	}
	agg := make(map[pageBucket]*pageStats)
	for _, e := range events {
		if e.Mutex < 0 {
			continue
		}
		key := pageBucket{page: e.Mutex, bucket: int64(e.At.Sub(t0) / bucket)}
		st := agg[key]
		if st == nil {
			st = &pageStats{}
			agg[key] = st
		}
		switch e.Kind {
		case trace.KindLockGrant:
			st.grants++
		case trace.KindUnlock, trace.KindFlush:
			st.releases++
			st.bytes += e.Bytes
		}
	}
	keys := make([]pageBucket, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].page != keys[j].page {
			return keys[i].page < keys[j].page
		}
		return keys[i].bucket < keys[j].bucket
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	fmt.Fprintln(bw, "page,t_ms,fault_rate_hz,releases,bytes,diff_density_bytes_per_release")
	secs := bucket.Seconds()
	for _, k := range keys {
		st := agg[k]
		density := 0.0
		if st.releases > 0 {
			density = float64(st.bytes) / float64(st.releases)
		}
		fmt.Fprintf(bw, "%d,%d,%.3f,%d,%d,%.1f\n",
			k.page, k.bucket*bucket.Milliseconds(), float64(st.grants)/secs,
			st.releases, st.bytes, density)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
