// Distributed LU decomposition — the paper's second workload. Rows are
// dealt cyclically to three threads; every elimination step ends in a
// distributed barrier that publishes the new pivot row. LU rewrites most of
// the matrix every step, so it moves far more data per synchronization than
// matmul — the effect Figure 11 measures.
//
// Run with: go run ./examples/lu [-n 99] [-pair SL]
package main

import (
	"flag"
	"fmt"
	"log"

	"hetdsm"
)

func main() {
	n := flag.Int("n", 99, "matrix dimension")
	pairLabel := flag.String("pair", "SL", "platform pair: LL, SS or SL")
	flag.Parse()

	var pair hetdsm.PlatformPair
	found := false
	for _, p := range hetdsm.PlatformPairs() {
		if p.Label == *pairLabel {
			pair, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown pair %q", *pairLabel)
	}

	fmt.Printf("factoring a %dx%d matrix (LU, no pivoting) on a %s cluster\n",
		*n, *n, pair.Label)

	res, err := hetdsm.RunExperiment(hetdsm.ExperimentConfig{
		Workload: "lu",
		N:        *n,
		Pair:     pair,
		Verify:   true,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wall time %v; result bit-identical to the sequential factorization: %v\n",
		res.Wall, res.Verified)
	fmt.Printf("(IEEE-754 doubles survive SPARC<->x86 conversion exactly, so even\n")
	fmt.Printf(" floating point matches bit for bit across %d barriers)\n", *n-1)
	fmt.Printf("\n%d bytes of row updates crossed the DSM\n", res.UpdateBytes)
	fmt.Printf("conversion at the home node: %v", res.Home[hetdsm.PhaseConv])
	if pair.Label == "SL" {
		fmt.Printf("  <- the paper's Figure 11 headline cost")
	}
	fmt.Println()
	names := []string{"index", "tag", "pack", "unpack", "conv"}
	fmt.Println("\nfull Cshare breakdown:")
	for p, d := range res.Agg {
		fmt.Printf("  t_%-7s %v\n", names[p], d)
	}
}
