// Distributed matrix multiplication — the paper's primary workload in its
// exact evaluation configuration: three threads, the home thread on one
// platform and two threads on another, global matrices A, B, C in the
// Figure 4 GThV structure, initialization under the distributed lock and
// compute phases separated by distributed barriers.
//
// Run with: go run ./examples/matmul [-n 138] [-pair SL]
package main

import (
	"flag"
	"fmt"
	"log"

	"hetdsm"
)

func main() {
	n := flag.Int("n", 138, "matrix dimension")
	pairLabel := flag.String("pair", "SL", "platform pair: LL, SS or SL")
	flag.Parse()

	var pair hetdsm.PlatformPair
	found := false
	for _, p := range hetdsm.PlatformPairs() {
		if p.Label == *pairLabel {
			pair, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown pair %q", *pairLabel)
	}

	fmt.Printf("multiplying two %dx%d matrices across a %s cluster\n", *n, *n, pair.Label)
	fmt.Printf("  home:   %s (%s-endian, %d KiB pages) — thread 0\n",
		pair.Home, pair.Home.Order, pair.Home.PageSize/1024)
	fmt.Printf("  remote: %s (%s-endian, %d KiB pages) — threads 1, 2\n",
		pair.Remote, pair.Remote.Order, pair.Remote.PageSize/1024)

	res, err := hetdsm.RunExperiment(hetdsm.ExperimentConfig{
		Workload: "matmul",
		N:        *n,
		Pair:     pair,
		Verify:   true,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nwall time: %v, result verified against sequential run: %v\n",
		res.Wall, res.Verified)
	fmt.Printf("%d bytes of updates crossed the DSM\n\n", res.UpdateBytes)
	fmt.Println("data-sharing penalty, Cshare = t_index+t_tag+t_pack+t_unpack+t_conv:")
	names := []string{"index", "tag", "pack", "unpack", "conv"}
	for p, d := range res.Agg {
		fmt.Printf("  t_%-7s %v\n", names[p], d)
	}
	fmt.Printf("  Cshare    %v (%.1f%% of wall time)\n",
		res.AggTotal(), 100*res.AggTotal().Seconds()/res.Wall.Seconds())
	fmt.Printf("\nconversion at the home node (Figure 10's metric): %v\n",
		res.Home[hetdsm.PhaseConv])
	if pair.Home.SameABI(pair.Remote) {
		fmt.Println("homogeneous pair: conversions took the memcpy fast path")
	} else {
		fmt.Println("heterogeneous pair: every update was byte-swapped receiver-makes-right")
	}
}
