// Quickstart: two threads on different virtual architectures — one
// big-endian SPARC/Solaris, one little-endian x86/Linux — share a counter
// and a small array through the DSM, synchronized with the distributed
// lock exactly the way a Pthreads program uses pthread_mutex_lock.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"hetdsm"
)

func main() {
	// 1. Declare the shared globals: the single GThV structure the
	// MigThread preprocessor would have collected from a C program.
	gthv := hetdsm.Struct{Name: "GThV_t", Fields: []hetdsm.Field{
		{Name: "counter", T: hetdsm.Int()},
		{Name: "history", T: hetdsm.IntArray(16)},
	}}

	// 2. Create the home node (master copy on the Linux box) and two
	// worker threads on opposite architectures.
	home, err := hetdsm.NewHome(gthv, hetdsm.LinuxX86, 2, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sparc, err := home.LocalThread(0, hetdsm.SolarisSPARC, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	x86, err := home.LocalThread(1, hetdsm.LinuxX86, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Both threads increment the counter under the distributed lock.
	// Endianness conversion is invisible: the DSM converts updates
	// receiver-makes-right.
	const perThread = 8
	var wg sync.WaitGroup
	for _, th := range []*hetdsm.Thread{sparc, x86} {
		wg.Add(1)
		go func(th *hetdsm.Thread) {
			defer wg.Done()
			counter := th.Globals().MustVar("counter")
			history := th.Globals().MustVar("history")
			for i := 0; i < perThread; i++ {
				if err := th.Lock(0); err != nil {
					log.Fatal(err)
				}
				v, err := counter.Int(0)
				if err != nil {
					log.Fatal(err)
				}
				if err := counter.SetInt(0, v+1); err != nil {
					log.Fatal(err)
				}
				if err := history.SetInt(int(v), int64(th.Rank())); err != nil {
					log.Fatal(err)
				}
				if err := th.Unlock(0); err != nil {
					log.Fatal(err)
				}
			}
			if err := th.Join(); err != nil {
				log.Fatal(err)
			}
		}(th)
	}
	wg.Wait()
	home.Wait()

	// 4. Read the final state from the master copy.
	final, err := home.Globals().MustVar("counter").Int(0)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := home.Globals().MustVar("history").Ints(0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter: %d (want %d — no increment lost across endianness)\n",
		final, 2*perThread)
	fmt.Printf("who held the lock at each count: %v\n", hist)
	fmt.Printf("sparc thread data-sharing cost: %v\n", sparc.Stats())
	fmt.Printf("x86 thread data-sharing cost:   %v\n", x86.Stats())
}
