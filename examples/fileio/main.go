// File I/O and socket migration — the paper's future-work items (§6),
// working together: a thread streams records from a shared file AND from a
// live session with a data server, folding both into a running digest. Mid-
// stream it migrates from the x86 node to the SPARC node; its descriptor
// table travels as CGT-RMR-tagged state (reopened at the exact offsets) and
// its session re-attaches with replay, so not one record is lost,
// duplicated or reordered.
//
// Run with: go run ./examples/fileio
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"hetdsm"
)

const (
	fileRecords   = 400
	socketRecords = 120
	recordSize    = 8
)

// streamWork consumes one file record and polls one socket record per step.
type streamWork struct {
	fs   *hetdsm.SharedFS
	nw   hetdsm.Network
	addr string

	table *hetdsm.FileTable
	fd    int32
	sock  *hetdsm.MigSocket

	sockState hetdsm.SocketState // captured at migration
	haveSock  bool
}

func (w *streamWork) FrameType() hetdsm.Struct {
	return hetdsm.Struct{Name: "frame", Fields: []hetdsm.Field{
		{Name: "fd", T: hetdsm.Int()},
		{Name: "digest", T: hetdsm.LongLong()},
		{Name: "fileRecs", T: hetdsm.LongLong()},
		{Name: "sockRecs", T: hetdsm.LongLong()},
		// The socket session's migratable identity.
		{Name: "sockID", T: hetdsm.LongLong()},
		{Name: "sockSend", T: hetdsm.LongLong()},
		{Name: "sockRecv", T: hetdsm.LongLong()},
	}}
}

func (w *streamWork) Init(ctx *hetdsm.Ctx) error {
	w.table = hetdsm.NewFileTable(w.fs)
	fd, err := w.table.Open("/input.rec", hetdsm.ModeRead)
	if err != nil {
		return err
	}
	w.fd = fd
	sock, err := hetdsm.DialSession(w.nw, w.addr)
	if err != nil {
		return err
	}
	w.sock = sock
	if err := ctx.Frame().SetInt("fd", int64(fd)); err != nil {
		return err
	}
	return ctx.Frame().SetInt("sockID", int64(sock.ID()))
}

// CaptureExtra ships the descriptor table; the socket state rides in the
// frame (it is three integers).
func (w *streamWork) CaptureExtra(ctx *hetdsm.Ctx) ([]byte, string, error) {
	st := w.sock.Capture()
	if err := ctx.Frame().SetInt("sockID", int64(st.ID)); err != nil {
		return nil, "", err
	}
	if err := ctx.Frame().SetInt("sockSend", int64(st.SendSeq)); err != nil {
		return nil, "", err
	}
	if err := ctx.Frame().SetInt("sockRecv", int64(st.RecvSeq)); err != nil {
		return nil, "", err
	}
	return w.table.Capture(ctx.Platform())
}

func (w *streamWork) Restore(ctx *hetdsm.Ctx) error {
	payload, tagStr, srcPlat := ctx.Extra()
	table, err := hetdsm.RestoreFileTable(w.fs, ctx.Platform(), srcPlat, tagStr, payload)
	if err != nil {
		return err
	}
	w.table = table
	fd, err := ctx.Frame().Int("fd")
	if err != nil {
		return err
	}
	w.fd = int32(fd)

	id, _ := ctx.Frame().Int("sockID")
	send, _ := ctx.Frame().Int("sockSend")
	recv, _ := ctx.Frame().Int("sockRecv")
	sock, err := hetdsm.ResumeSession(w.nw, hetdsm.SocketState{
		Addr: w.addr, ID: uint64(id), SendSeq: uint64(send), RecvSeq: uint64(recv),
	})
	if err != nil {
		return err
	}
	w.sock = sock
	return nil
}

func (w *streamWork) Step(ctx *hetdsm.Ctx) (bool, error) {
	f := ctx.Frame()
	digest, _ := f.Int("digest")
	fileRecs, _ := f.Int("fileRecs")
	sockRecs, _ := f.Int("sockRecs")

	// One record from the file, while it lasts.
	if fileRecs < fileRecords {
		file, err := w.table.File(w.fd)
		if err != nil {
			return false, err
		}
		buf := make([]byte, recordSize)
		if _, err := io.ReadFull(file, buf); err != nil {
			return false, err
		}
		digest = digest*131 + int64(binary.BigEndian.Uint64(buf))%1_000_003
		fileRecs++
	}
	// One record from the live session, while it lasts.
	if sockRecs < socketRecords {
		rec, err := w.sock.Recv()
		if err != nil {
			return false, err
		}
		digest = digest*137 + int64(binary.BigEndian.Uint64(rec))%1_000_003
		sockRecs++
	}

	if err := f.SetInt("digest", digest); err != nil {
		return false, err
	}
	if err := f.SetInt("fileRecs", fileRecs); err != nil {
		return false, err
	}
	if err := f.SetInt("sockRecs", sockRecs); err != nil {
		return false, err
	}
	if fileRecs < fileRecords || sockRecs < socketRecords {
		return false, nil
	}
	if err := ctx.T.Lock(0); err != nil {
		return false, err
	}
	if err := ctx.T.Globals().MustVar("digest").SetInt(0, digest); err != nil {
		return false, err
	}
	if err := ctx.T.Unlock(0); err != nil {
		return false, err
	}
	return true, nil
}

func main() {
	gthv := hetdsm.Struct{Name: "GThV_t", Fields: []hetdsm.Field{
		{Name: "digest", T: hetdsm.LongLong()},
	}}
	nw := hetdsm.NewInproc()

	// Shared input file: fileRecords big-endian 8-byte records.
	fs := hetdsm.NewSharedFS()
	fileData := make([]byte, fileRecords*recordSize)
	for i := 0; i < fileRecords; i++ {
		binary.BigEndian.PutUint64(fileData[i*recordSize:], uint64(i)*2654435761)
	}
	fs.WriteFile("/input.rec", fileData)

	// A record server streaming socketRecords records per session.
	srv, err := hetdsm.NewSessionServer(nw, "records")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			ss, err := srv.Accept()
			if err != nil {
				return
			}
			go func() {
				for i := 0; i < socketRecords; i++ {
					rec := make([]byte, recordSize)
					binary.BigEndian.PutUint64(rec, uint64(i)*40503+7)
					_ = ss.Send(rec)
					time.Sleep(time.Millisecond)
				}
			}()
		}
	}()

	// Ground truth: the digest a never-migrated consumer computes.
	want := func() int64 {
		var digest int64
		fr, sr := 0, 0
		for fr < fileRecords || sr < socketRecords {
			if fr < fileRecords {
				digest = digest*131 + int64(binary.BigEndian.Uint64(fileData[fr*recordSize:]))%1_000_003
				fr++
			}
			if sr < socketRecords {
				rec := uint64(sr)*40503 + 7
				digest = digest*137 + int64(rec)%1_000_003
				sr++
			}
		}
		return digest
	}()

	home, err := hetdsm.NewHome(gthv, hetdsm.LinuxX86, 1, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		log.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()

	n1 := hetdsm.NewNode("x86-box", hetdsm.LinuxX86, nw, "home", gthv, hetdsm.DefaultOptions())
	n2 := hetdsm.NewNode("sparc-box", hetdsm.SolarisSPARC, nw, "home", gthv, hetdsm.DefaultOptions())
	for _, n := range []*hetdsm.Node{n1, n2} {
		if err := n.ListenMigrations(n.Name() + "-mig"); err != nil {
			log.Fatal(err)
		}
		defer n.Close()
	}

	mk := func() *streamWork { return &streamWork{fs: fs, nw: nw, addr: "records"} }
	if _, err := n2.StartSkeleton(0, mk()); err != nil {
		log.Fatal(err)
	}
	if _, err := n1.StartThread(0, mk(), hetdsm.RoleLocal); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d file records + %d socket records on %s ...\n",
		fileRecords, socketRecords, n1.Name())

	var once sync.Once
	go func() {
		// Let it get ~40 records in, then order the move.
		time.Sleep(50 * time.Millisecond)
		once.Do(func() {
			if err := n1.RequestMigration(0, n2.MigrationAddr()); err != nil {
				log.Fatal(err)
			}
		})
	}()
	if err := n1.WaitAll(); err != nil {
		log.Fatal(err)
	}
	if err := n2.WaitAll(); err != nil {
		log.Fatal(err)
	}
	home.Wait()

	for _, rec := range n1.Migrations() {
		fmt.Printf("migrated at step %d: descriptor table + session state moved to %s\n",
			rec.PC, n2.Name())
	}
	got, err := home.Globals().MustVar("digest").Int(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digest: %d (want %d) — streams survived the move intact: %v\n",
		got, want, got == want)
}
