// Heterogeneous thread migration with adaptive load balancing — the full
// MigThread + DSD + scheduler stack.
//
// A worker thread starts on an x86/Linux node, summing a long series in
// steps while publishing progress through the DSM. Mid-computation the
// load balancer notices the node is overloaded and an idle SPARC/Solaris
// machine has a matching skeleton slot (iso-computing: same rank), so the
// thread's state — its typed frame, serialized with CGT-RMR tags — is
// captured, byte-swapped receiver-makes-right, and resumed on the SPARC
// node, which finishes the job. The result is exact.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"hetdsm"
)

// seriesWork sums i=1..Total in chunks, keeping its loop state in the
// migratable frame (the preprocessor-produced form of a C thread body).
type seriesWork struct {
	Total int64
	Chunk int64
	steps atomic.Int64
}

func (w *seriesWork) FrameType() hetdsm.Struct {
	// long long, not long: C long is only 4 bytes on the ILP32 paper
	// platforms and sum(1..10^6) overflows 32 bits.
	return hetdsm.Struct{Name: "frame", Fields: []hetdsm.Field{
		{Name: "i", T: hetdsm.LongLong()},
		{Name: "acc", T: hetdsm.LongLong()},
	}}
}

func (w *seriesWork) Init(ctx *hetdsm.Ctx) error {
	if err := ctx.Frame().SetInt("i", 1); err != nil {
		return err
	}
	return ctx.Frame().SetInt("acc", 0)
}

func (w *seriesWork) Step(ctx *hetdsm.Ctx) (bool, error) {
	f := ctx.Frame()
	i, err := f.Int("i")
	if err != nil {
		return false, err
	}
	acc, _ := f.Int("acc")
	for k := int64(0); k < w.Chunk && i <= w.Total; k++ {
		acc += i
		i++
	}
	if err := f.SetInt("i", i); err != nil {
		return false, err
	}
	if err := f.SetInt("acc", acc); err != nil {
		return false, err
	}
	w.steps.Add(1)
	time.Sleep(2 * time.Millisecond) // make the run observable
	if i <= w.Total {
		return false, nil
	}
	if err := ctx.T.Lock(0); err != nil {
		return false, err
	}
	if err := ctx.T.Globals().MustVar("sum").SetInt(0, acc); err != nil {
		return false, err
	}
	if err := ctx.T.Unlock(0); err != nil {
		return false, err
	}
	return true, nil
}

func main() {
	gthv := hetdsm.Struct{Name: "GThV_t", Fields: []hetdsm.Field{
		{Name: "sum", T: hetdsm.LongLong()},
	}}

	// Home + two machines over the in-process network.
	nw := hetdsm.NewInproc()
	home, err := hetdsm.NewHome(gthv, hetdsm.LinuxX86, 1, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	hl, err := nw.Listen("home")
	if err != nil {
		log.Fatal(err)
	}
	go home.Serve(hl)
	defer home.Close()

	busy := hetdsm.NewNode("x86-box", hetdsm.LinuxX86, nw, "home", gthv, hetdsm.DefaultOptions())
	idle := hetdsm.NewNode("sparc-box", hetdsm.SolarisSPARC, nw, "home", gthv, hetdsm.DefaultOptions())
	for _, n := range []*hetdsm.Node{busy, idle} {
		if err := n.ListenMigrations(n.Name() + "-mig"); err != nil {
			log.Fatal(err)
		}
		defer n.Close()
	}

	const total = 1_000_000
	work := &seriesWork{Total: total, Chunk: 10_000}
	if _, err := busy.StartThread(0, work, hetdsm.RoleLocal); err != nil {
		log.Fatal(err)
	}
	// The idle machine holds a skeleton for the same rank — the same
	// application, started everywhere, per the iso-computing scheme.
	if _, err := idle.StartSkeleton(0, &seriesWork{Total: total, Chunk: 10_000}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thread 0 computing sum(1..%d) on %s (%s-endian)\n",
		total, busy.Name(), busy.Platform().Order)

	// The adaptive layer: the x86 box reports heavy load, the SPARC box
	// is idle; the balancer orders the move.
	loads := hetdsm.LoadFunc(func(node string) float64 {
		if node == "x86-box" {
			return 0.92
		}
		return 0.08
	})
	balancer, err := hetdsm.NewBalancer(hetdsm.DefaultPolicy(), loads, busy, idle)
	if err != nil {
		log.Fatal(err)
	}

	// Let it run a moment, then balance.
	time.Sleep(20 * time.Millisecond)
	decisions := balancer.Tick()
	for _, d := range decisions {
		fmt.Printf("balancer: node %q load %.2f > high water; moving rank %d to %q (load %.2f)\n",
			d.From, d.FromLoad, d.Rank, d.To, d.ToLoad)
	}

	if err := busy.WaitAll(); err != nil {
		log.Fatal(err)
	}
	if err := idle.WaitAll(); err != nil {
		log.Fatal(err)
	}
	home.Wait()

	for _, rec := range busy.Migrations() {
		fmt.Printf("migrated at step %d: %d-byte frame captured on %s, restored on %s in %v\n",
			rec.PC, rec.FrameBytes, busy.Platform(), idle.Platform(), rec.CaptureTime)
	}
	srcRole, _ := busy.Role(0)
	dstRole, _ := idle.Role(0)
	fmt.Printf("roles after migration: %s slot=%v, %s slot=%v\n",
		busy.Name(), srcRole, idle.Name(), dstRole)

	got, err := home.Globals().MustVar("sum").Int(0)
	if err != nil {
		log.Fatal(err)
	}
	want := int64(total) * (total + 1) / 2
	fmt.Printf("result: %d (want %d) — exact across the x86 -> SPARC move: %v\n",
		got, want, got == want)
}
