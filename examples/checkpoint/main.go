// Heterogeneous crash recovery: a computation is checkpointed mid-run into
// a single portable blob — thread frame, logical PC and the full globals
// image, each tagged with CGT-RMR — the whole cluster is destroyed, and
// the blob restores onto the OPPOSITE architecture, which finishes the job
// with the exact result.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"hetdsm"
)

// piWork approximates pi with the Leibniz series in chunks; its loop state
// (term index and accumulator) lives in the migratable frame.
type piWork struct {
	Terms int64
	Chunk int64
	hook  func(pc int64)
}

func (w *piWork) FrameType() hetdsm.Struct {
	return hetdsm.Struct{Name: "frame", Fields: []hetdsm.Field{
		{Name: "k", T: hetdsm.LongLong()},
		{Name: "acc", T: hetdsm.Double()},
	}}
}

func (w *piWork) Init(ctx *hetdsm.Ctx) error {
	if err := ctx.Frame().SetInt("k", 0); err != nil {
		return err
	}
	return ctx.Frame().SetFloat64("acc", 0)
}

func (w *piWork) Step(ctx *hetdsm.Ctx) (bool, error) {
	f := ctx.Frame()
	k, err := f.Int("k")
	if err != nil {
		return false, err
	}
	acc, err := f.Float64("acc")
	if err != nil {
		return false, err
	}
	for i := int64(0); i < w.Chunk && k < w.Terms; i++ {
		term := 1.0 / float64(2*k+1)
		if k%2 == 1 {
			term = -term
		}
		acc += term
		k++
	}
	if err := f.SetInt("k", k); err != nil {
		return false, err
	}
	if err := f.SetFloat64("acc", acc); err != nil {
		return false, err
	}
	if w.hook != nil {
		w.hook(ctx.PC())
	}
	if k < w.Terms {
		return false, nil
	}
	if err := ctx.T.Lock(0); err != nil {
		return false, err
	}
	if err := ctx.T.Globals().MustVar("pi").SetFloat64(0, 4*acc); err != nil {
		return false, err
	}
	if err := ctx.T.Unlock(0); err != nil {
		return false, err
	}
	return true, nil
}

func main() {
	gthv := hetdsm.Struct{Name: "GThV_t", Fields: []hetdsm.Field{
		{Name: "pi", T: hetdsm.Double()},
	}}
	const terms, chunk = 40_000_000, 200_000

	// --- phase 1: run on a little-endian x86 cluster, checkpoint mid-way.
	nw := hetdsm.NewInproc()
	home, err := hetdsm.NewHome(gthv, hetdsm.LinuxX86, 1, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	l, err := nw.Listen("home")
	if err != nil {
		log.Fatal(err)
	}
	go home.Serve(l)

	node := hetdsm.NewNode("x86-box", hetdsm.LinuxX86, nw, "home", gthv, hetdsm.DefaultOptions())
	captured := make(chan *hetdsm.Checkpoint, 1)
	var once sync.Once
	w := &piWork{Terms: terms, Chunk: chunk}
	w.hook = func(pc int64) {
		if pc >= 50 {
			once.Do(func() {
				go func() {
					ck, err := node.RequestCheckpoint(0)
					if err != nil {
						log.Fatal(err)
					}
					captured <- ck
				}()
			})
		}
		if pc >= 50 {
			select {
			case <-captured:
				// re-buffer below; just pace until capture lands
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	if _, err := node.StartThread(0, w, hetdsm.RoleLocal); err != nil {
		log.Fatal(err)
	}
	ck := <-captured
	captured <- ck // restore for the pacing select above
	gImg, gTag := home.Checkpoint()
	ck.Globals, ck.GlobalsTag = gImg, gTag
	var blob bytes.Buffer
	if err := ck.Save(&blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed on %s at step %d: %d-byte blob (frame %dB + globals %dB, CRC-framed)\n",
		ck.Platform, ck.PC, blob.Len(), len(ck.Frame), len(ck.Globals))

	// --- phase 2: the machine "dies".
	home.Close()
	fmt.Println("x86 cluster destroyed; recovering on big-endian SPARC from the blob ...")

	// --- phase 3: restore on the opposite architecture and finish.
	loaded, err := hetdsm.LoadCheckpoint(&blob)
	if err != nil {
		log.Fatal(err)
	}
	nw2 := hetdsm.NewInproc()
	home2, err := hetdsm.NewHome(gthv, hetdsm.SolarisSPARC, 1, hetdsm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := home2.Restore(loaded.Globals, loaded.GlobalsTag, loaded.Platform, hetdsm.DefaultOptions().Base); err != nil {
		log.Fatal(err)
	}
	l2, err := nw2.Listen("home")
	if err != nil {
		log.Fatal(err)
	}
	go home2.Serve(l2)
	defer home2.Close()

	node2 := hetdsm.NewNode("sparc-box", hetdsm.SolarisSPARC, nw2, "home", gthv, hetdsm.DefaultOptions())
	if _, err := node2.StartFromCheckpoint(0, &piWork{Terms: terms, Chunk: chunk}, loaded); err != nil {
		log.Fatal(err)
	}
	if err := node2.WaitAll(); err != nil {
		log.Fatal(err)
	}
	home2.Wait()

	got, err := home2.Globals().MustVar("pi").Float64(0)
	if err != nil {
		log.Fatal(err)
	}
	// Reference: the same series computed in one piece.
	ref := 0.0
	for k := int64(0); k < terms; k++ {
		term := 1.0 / float64(2*k+1)
		if k%2 == 1 {
			term = -term
		}
		ref += term
	}
	ref *= 4
	fmt.Printf("pi after recovery: %.12f (reference %.12f, bit-identical: %v)\n",
		got, ref, got == ref)
}
