package hetdsm

import (
	"sync"
	"testing"
)

// TestFacadeCounter exercises the doc-comment example: two heterogeneous
// threads increment a shared counter under the distributed lock.
func TestFacadeCounter(t *testing.T) {
	gthv := Struct{Name: "GThV_t", Fields: []Field{
		{Name: "counter", T: Int()},
	}}
	home, err := NewHome(gthv, LinuxX86, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := home.LocalThread(0, SolarisSPARC, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := home.LocalThread(1, LinuxX86, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const per = 50
	var wg sync.WaitGroup
	for _, th := range []*Thread{a, b} {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			v := th.Globals().MustVar("counter")
			for i := 0; i < per; i++ {
				if err := th.Lock(0); err != nil {
					t.Error(err)
					return
				}
				x, err := v.Int(0)
				if err != nil {
					t.Error(err)
					return
				}
				if err := v.SetInt(0, x+1); err != nil {
					t.Error(err)
					return
				}
				if err := th.Unlock(0); err != nil {
					t.Error(err)
					return
				}
			}
			if err := th.Join(); err != nil {
				t.Error(err)
			}
		}(th)
	}
	wg.Wait()
	home.Wait()
	v, err := home.Globals().MustVar("counter").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*per {
		t.Errorf("counter = %d, want %d", v, 2*per)
	}
}

func TestFacadeExperiment(t *testing.T) {
	for _, pair := range PlatformPairs() {
		res, err := RunExperiment(ExperimentConfig{
			Workload: "matmul", N: 16, Pair: pair, Verify: true, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%s: %v", pair.Label, err)
		}
		if !res.Verified {
			t.Errorf("%s: not verified", pair.Label)
		}
	}
}

func TestFacadePlatformLookup(t *testing.T) {
	if PlatformByName("linux-x86") != LinuxX86 {
		t.Error("PlatformByName mismatch")
	}
	if len(Platforms()) != 4 {
		t.Errorf("Platforms() = %d, want 4", len(Platforms()))
	}
}

// TestFacadeMigIO smoke-tests the migratable-I/O exports: shared FS,
// descriptor tables across platforms, and resumable sessions.
func TestFacadeMigIO(t *testing.T) {
	fs := NewSharedFS()
	fs.WriteFile("/f", []byte("hello world"))
	tb := NewFileTable(fs)
	fd, err := tb.Open("/f", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	f, err := tb.File(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	img, tagStr, err := tb.Capture(LinuxX86)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := RestoreFileTable(fs, SolarisSPARC, LinuxX86.Name, tagStr, img)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := tb2.File(fd)
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]byte, 6)
	if _, err := f2.Read(rest); err != nil {
		t.Fatal(err)
	}
	if string(rest) != " world" {
		t.Errorf("restored read = %q", rest)
	}

	nw := NewInproc()
	srv, err := NewSessionServer(nw, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		ss, err := srv.Accept()
		if err != nil {
			return
		}
		_ = ss.Send([]byte("ping"))
	}()
	c, err := DialSession(nw, "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != "ping" {
		t.Errorf("session recv = %q", p)
	}
}

// TestFacadeCheckpointAndTrace smoke-tests the checkpoint and trace
// exports through a tiny traced run.
func TestFacadeCheckpointAndTrace(t *testing.T) {
	log := NewTraceLog(64)
	opts := DefaultOptions()
	opts.Trace = log
	gthv := Struct{Name: "G", Fields: []Field{{Name: "x", T: Int()}}}
	home, err := NewHome(gthv, SolarisSPARC, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := home.LocalThread(0, LinuxX86, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Globals().MustVar("x").SetInt(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := th.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	home.Wait()
	if log.Total() == 0 {
		t.Error("trace recorded nothing")
	}
	img, tagStr := home.Checkpoint()
	ck := &Checkpoint{Platform: SolarisSPARC.Name, Globals: img, GlobalsTag: tagStr}
	loaded, err := DecodeCheckpoint(ck.Encode())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := loaded.RestoreGlobals(gthv, LinuxX8664)
	if err != nil {
		t.Fatal(err)
	}
	if v := LinuxX8664.Int(restored, 4); v != 7 {
		t.Errorf("restored x = %d, want 7", v)
	}
}

// TestFacadeInvalidateProtocol smoke-tests the protocol export.
func TestFacadeInvalidateProtocol(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = ProtocolInvalidate
	gthv := Struct{Name: "G", Fields: []Field{{Name: "x", T: Int()}}}
	home, err := NewHome(gthv, LinuxX86, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := home.LocalThread(0, SolarisSPARC, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := home.LocalThread(1, LinuxX86, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Protocol() != ProtocolInvalidate {
		t.Fatal("protocol not adopted")
	}
	if err := a.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Globals().MustVar("x").SetInt(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlock(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(0); err != nil {
		t.Fatal(err)
	}
	v, err := b.Globals().MustVar("x").Int(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("fetched x = %d", v)
	}
	if err := b.Unlock(0); err != nil {
		t.Fatal(err)
	}
}
