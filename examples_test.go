package hetdsm

import (
	"os/exec"
	"strings"
	"testing"
	"time"

	"hetdsm/internal/dsd"
	"hetdsm/internal/telemetry"
)

// TestTelemetryOffByDefault guards the disabled-path contract end to
// end: the default options carry no telemetry sinks, and the nil
// handles a disabled node holds are free — no allocations on the DSD
// hot path when nobody asked for -metrics-addr.
func TestTelemetryOffByDefault(t *testing.T) {
	opts := dsd.DefaultOptions()
	if opts.Metrics != nil {
		t.Error("DefaultOptions().Metrics must be nil")
	}
	if opts.Spans != nil {
		t.Error("DefaultOptions().Spans must be nil")
	}
	if kit := telemetry.NewKit("", "", ""); kit != nil {
		t.Error("NewKit with no outputs must return the disabled (nil) kit")
	}
	var disabled *telemetry.Kit
	reg := disabled.Registry()
	c := reg.Counter("dsm_locks_total", "")
	h := reg.Histogram("dsm_lock_acquire_seconds", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.001)
		disabled.Spans().Record("n", telemetry.StageShip, 0, 1, time.Time{}, time.Millisecond, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocated %v per operation set, want 0", allocs)
	}
}

// TestExamplesRun builds and executes every example program and checks its
// success marker, guarding the documented entry points against rot. Skipped
// under -short (each example is a full `go run` compile + execute).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"./examples/quickstart", nil, []string{
			"final counter: 16 (want 16",
		}},
		{"./examples/matmul", []string{"-n", "48", "-pair", "SL"}, []string{
			"result verified against sequential run: true",
			"heterogeneous pair",
		}},
		{"./examples/lu", []string{"-n", "32", "-pair", "SL"}, []string{
			"bit-identical to the sequential factorization: true",
		}},
		{"./examples/migration", nil, []string{
			"exact across the x86 -> SPARC move: true",
			"roles after migration: x86-box slot=stub, sparc-box slot=done",
		}},
		{"./examples/checkpoint", nil, []string{
			"bit-identical: true",
		}},
		{"./examples/fileio", nil, []string{
			"streams survived the move intact: true",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.dir}, c.args...)
			cmd := exec.Command("go", args...)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("%s timed out", c.dir)
			}
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
